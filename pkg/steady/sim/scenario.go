package sim

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"strings"

	isim "repro/internal/sim"
	"repro/pkg/steady/platform"
)

// Scenario describes the conditions a solved schedule is simulated
// under. The zero value is the static scenario: an exact,
// period-granular replay of the reconstructed schedule on the nominal
// platform. Setting any dynamic field (Tasks, Horizon, NodeLoad,
// EdgeLoad, Slowdowns, Adaptive, EpochLength) switches to the
// event-driven float simulator of §5.5, which runs demand-driven
// master-slave tasking on a shortest-path overlay tree under
// time-varying resource performance; dynamic scenarios therefore
// require a masterslave result under the base port model.
//
// Scenario is plain data with a stable JSON encoding: the same value
// drives in-process runs (Engine.Run), sweeps (Engine.Sweep), the
// service endpoints (POST /v1/simulate), and cmd/platgen -trace
// bundles.
type Scenario struct {
	// Name labels the scenario in reports and sweep records; empty
	// selects "static" or "dynamic" automatically.
	Name string `json:"name,omitempty"`

	// Periods overrides the static replay horizon (0 = choose the
	// smallest horizon whose asymptotic-optimality ratio provably
	// reaches the engine's target ratio).
	Periods int64 `json:"periods,omitempty"`

	// Tasks is the number of tasks the dynamic simulation processes
	// (0 with a Horizon = run to the horizon; 0 without = engine
	// default).
	Tasks int `json:"tasks,omitempty"`
	// Horizon stops the dynamic simulation at this time (0 = run
	// until Tasks complete).
	Horizon float64 `json:"horizon,omitempty"`
	// NodeLoad and EdgeLoad attach load traces (multipliers on the
	// base cost, >1 = slower) to named nodes and to edges keyed
	// "from->to".
	NodeLoad map[string]TraceSpec `json:"node_load,omitempty"`
	EdgeLoad map[string]TraceSpec `json:"edge_load,omitempty"`
	// Slowdowns are step-trace sugar: the named node or edge runs
	// Factor times slower during [From, Until). They model host
	// slowdown and, with a large factor, churn-style outages.
	Slowdowns []Slowdown `json:"slowdowns,omitempty"`
	// Adaptive re-solves the steady-state LP each epoch from NWS-like
	// forecasts (§5.5, internal/adaptive) instead of keeping the
	// nominal LP rates.
	Adaptive bool `json:"adaptive,omitempty"`
	// EpochLength is the re-planning epoch of Adaptive (0 = engine
	// default).
	EpochLength float64 `json:"epoch,omitempty"`
	// Seed seeds random-walk traces; same seed, same scenario.
	Seed int64 `json:"seed,omitempty"`
}

// Dynamic reports whether the scenario needs the event-driven
// simulator rather than the exact periodic replay.
func (s *Scenario) Dynamic() bool {
	return s.Tasks > 0 || s.Horizon > 0 || len(s.NodeLoad) > 0 ||
		len(s.EdgeLoad) > 0 || len(s.Slowdowns) > 0 || s.Adaptive || s.EpochLength > 0
}

// label returns the report label for the scenario.
func (s *Scenario) label() string {
	if s.Name != "" {
		return s.Name
	}
	if s.Dynamic() {
		return "dynamic"
	}
	return "static"
}

// maxTraceKnots bounds per-trace breakpoints: scenarios cross the
// service boundary, so malformed or hostile specs must fail fast.
const maxTraceKnots = 100000

// Validate checks the scenario's own consistency (platform-dependent
// references are checked at run time).
func (s *Scenario) Validate() error {
	if s.Periods < 0 {
		return fmt.Errorf("sim: negative periods")
	}
	if s.Tasks < 0 || s.Horizon < 0 || s.EpochLength < 0 {
		return fmt.Errorf("sim: negative dynamic bounds")
	}
	for name, ts := range s.NodeLoad {
		if err := ts.validate(); err != nil {
			return fmt.Errorf("sim: node_load[%s]: %w", name, err)
		}
	}
	for key, ts := range s.EdgeLoad {
		if err := ts.validate(); err != nil {
			return fmt.Errorf("sim: edge_load[%s]: %w", key, err)
		}
		if _, _, err := splitEdgeKey(key); err != nil {
			return err
		}
	}
	seen := map[string]bool{}
	for i, sl := range s.Slowdowns {
		if err := sl.validate(); err != nil {
			return fmt.Errorf("sim: slowdown %d: %w", i, err)
		}
		key := "node:" + sl.Node
		if sl.Edge != "" {
			key = "edge:" + sl.Edge
		}
		if seen[key] {
			return fmt.Errorf("sim: slowdown %d repeats %s", i, key)
		}
		seen[key] = true
	}
	return nil
}

// TraceSpec is the serializable description of a piecewise-constant
// load trace (internal/sim.Trace). Kinds:
//
//	constant     {"kind":"constant","value":m}
//	steps        {"kind":"steps","times":[0,...],"mult":[...]}
//	random-walk  {"kind":"random-walk","horizon":h,"step":s,"lo":l,"hi":u}
//
// An empty kind with a positive Value means constant.
type TraceSpec struct {
	Kind    string    `json:"kind,omitempty"`
	Value   float64   `json:"value,omitempty"`
	Times   []float64 `json:"times,omitempty"`
	Mult    []float64 `json:"mult,omitempty"`
	Horizon float64   `json:"horizon,omitempty"`
	Step    float64   `json:"step,omitempty"`
	Lo      float64   `json:"lo,omitempty"`
	Hi      float64   `json:"hi,omitempty"`
}

func (t TraceSpec) validate() error {
	switch t.Kind {
	case "", "constant":
		if t.Value <= 0 {
			return fmt.Errorf("constant trace needs a positive value")
		}
	case "steps":
		if len(t.Times) == 0 || len(t.Times) != len(t.Mult) {
			return fmt.Errorf("steps trace needs matching non-empty times and mult")
		}
		if len(t.Times) > maxTraceKnots {
			return fmt.Errorf("steps trace has %d knots, limit %d", len(t.Times), maxTraceKnots)
		}
		if t.Times[0] != 0 {
			return fmt.Errorf("steps trace must start at time 0")
		}
		for i := 1; i < len(t.Times); i++ {
			if t.Times[i] <= t.Times[i-1] {
				return fmt.Errorf("steps trace breakpoints must increase")
			}
		}
		for _, m := range t.Mult {
			if m <= 0 {
				return fmt.Errorf("steps trace multipliers must be positive")
			}
		}
	case "random-walk":
		if t.Horizon <= 0 || t.Step <= 0 {
			return fmt.Errorf("random-walk trace needs positive horizon and step")
		}
		if t.Horizon/t.Step > maxTraceKnots {
			return fmt.Errorf("random-walk trace would have over %d knots", maxTraceKnots)
		}
		if t.Lo <= 0 || t.Hi < t.Lo {
			return fmt.Errorf("random-walk trace needs 0 < lo <= hi")
		}
	default:
		return fmt.Errorf("unknown trace kind %q (constant|steps|random-walk)", t.Kind)
	}
	return nil
}

// trace materializes the spec. rng is only consulted by random-walk
// traces.
func (t TraceSpec) trace(rng *rand.Rand) (*isim.Trace, error) {
	if err := t.validate(); err != nil {
		return nil, err
	}
	switch t.Kind {
	case "", "constant":
		return isim.ConstantTrace(t.Value), nil
	case "steps":
		return isim.StepTrace(t.Times, t.Mult), nil
	default: // random-walk
		return isim.RandomWalkTrace(rng, t.Horizon, t.Step, t.Lo, t.Hi), nil
	}
}

// Slowdown is step-trace sugar: the named node (or edge "from->to")
// runs Factor times slower during [From, Until). Until = 0 means
// forever; a very large Factor models a churned-out host.
type Slowdown struct {
	Node   string  `json:"node,omitempty"`
	Edge   string  `json:"edge,omitempty"`
	Factor float64 `json:"factor"`
	From   float64 `json:"from,omitempty"`
	Until  float64 `json:"until,omitempty"`
}

func (s Slowdown) validate() error {
	if (s.Node == "") == (s.Edge == "") {
		return fmt.Errorf("needs exactly one of node or edge")
	}
	if s.Edge != "" {
		if _, _, err := splitEdgeKey(s.Edge); err != nil {
			return err
		}
	}
	if s.Factor <= 0 {
		return fmt.Errorf("factor must be positive")
	}
	if s.From < 0 || (s.Until != 0 && s.Until <= s.From) {
		return fmt.Errorf("needs 0 <= from < until")
	}
	return nil
}

// spec renders the slowdown as an equivalent steps TraceSpec.
func (s Slowdown) spec() TraceSpec {
	times, mult := []float64{0}, []float64{1}
	if s.From == 0 {
		mult[0] = s.Factor
	} else {
		times = append(times, s.From)
		mult = append(mult, s.Factor)
	}
	if s.Until > 0 {
		times = append(times, s.Until)
		mult = append(mult, 1)
	}
	return TraceSpec{Kind: "steps", Times: times, Mult: mult}
}

// splitEdgeKey parses an "from->to" edge key.
func splitEdgeKey(key string) (from, to string, err error) {
	from, to, ok := strings.Cut(key, "->")
	if !ok || from == "" || to == "" {
		return "", "", fmt.Errorf("sim: edge key %q is not \"from->to\"", key)
	}
	return from, to, nil
}

// EdgeKey renders the canonical edge key for EdgeLoad and Slowdown.
func EdgeKey(from, to string) string { return from + "->" + to }

// Bundle pairs a platform with the scenario it was generated for, so
// the two travel together (cmd/platgen -trace emits bundles).
type Bundle struct {
	// Platform is the platform graph in the repository's canonical
	// JSON schema.
	Platform json.RawMessage `json:"platform"`
	// Scenario is the simulation scenario.
	Scenario Scenario `json:"scenario"`
}

// WriteBundle serializes a platform/scenario pair as JSON.
func WriteBundle(w io.Writer, p *platform.Platform, sc Scenario) error {
	var pb strings.Builder
	if err := p.WriteJSON(&pb); err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(Bundle{Platform: json.RawMessage(pb.String()), Scenario: sc})
}

// ReadBundle deserializes a bundle written by WriteBundle, validating
// both halves.
func ReadBundle(r io.Reader) (*platform.Platform, Scenario, error) {
	var b Bundle
	dec := json.NewDecoder(r)
	if err := dec.Decode(&b); err != nil {
		return nil, Scenario{}, fmt.Errorf("sim: decode bundle: %w", err)
	}
	p, err := platform.ReadJSON(strings.NewReader(string(b.Platform)))
	if err != nil {
		return nil, Scenario{}, err
	}
	if err := b.Scenario.Validate(); err != nil {
		return nil, Scenario{}, err
	}
	return p, b.Scenario, nil
}
