package sim

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"sort"
	"strings"

	"repro/pkg/steady/platform"
	"repro/pkg/steady/sim/event"
)

// Scenario describes the conditions a solved schedule is simulated
// under. The zero value is the static scenario: an exact,
// period-granular replay of the reconstructed schedule on the nominal
// platform. Setting any dynamic field (Tasks, Horizon, NodeLoad,
// EdgeLoad, Slowdowns, Adaptive, EpochLength) switches to the
// event-driven float simulator of §5.5, which runs demand-driven
// master-slave tasking on a shortest-path overlay tree under
// time-varying resource performance; dynamic scenarios therefore
// require a masterslave result under the base port model.
//
// Scenario is plain data with a stable JSON encoding: the same value
// drives in-process runs (Engine.Run), sweeps (Engine.Sweep), the
// service endpoints (POST /v1/simulate), and cmd/platgen -trace
// bundles.
type Scenario struct {
	// Name labels the scenario in reports and sweep records; empty
	// selects "static" or "dynamic" automatically.
	Name string `json:"name,omitempty"`

	// Periods overrides the static replay horizon (0 = choose the
	// smallest horizon whose asymptotic-optimality ratio provably
	// reaches the engine's target ratio).
	Periods int64 `json:"periods,omitempty"`

	// Tasks is the number of tasks the dynamic simulation processes
	// (0 with a Horizon = run to the horizon; 0 without = engine
	// default).
	Tasks int `json:"tasks,omitempty"`
	// Horizon stops the dynamic simulation at this time (0 = run
	// until Tasks complete).
	Horizon float64 `json:"horizon,omitempty"`
	// NodeLoad and EdgeLoad attach load traces (multipliers on the
	// base cost, >1 = slower) to named nodes and to edges keyed
	// "from->to".
	NodeLoad map[string]TraceSpec `json:"node_load,omitempty"`
	EdgeLoad map[string]TraceSpec `json:"edge_load,omitempty"`
	// Slowdowns are step-trace sugar: the named node or edge runs
	// Factor times slower during [From, Until). They model host
	// slowdown and, with a large factor, churn-style outages.
	Slowdowns []Slowdown `json:"slowdowns,omitempty"`
	// Arrivals, when set, replaces the master's unbounded task supply
	// with a workload arrival process (recorded trace or a seeded
	// generator); without Tasks or Horizon the run then processes
	// exactly the arrived tasks.
	Arrivals *ArrivalSpec `json:"arrivals,omitempty"`
	// Failures take the named node or edge fully offline during
	// [From, Until) — link failures and node churn, as opposed to the
	// soft multiplicative Slowdowns.
	Failures []Failure `json:"failures,omitempty"`
	// Adaptive re-solves the steady-state LP each epoch from NWS-like
	// forecasts (§5.5, internal/adaptive) instead of keeping the
	// nominal LP rates.
	Adaptive bool `json:"adaptive,omitempty"`
	// EpochLength is the re-planning epoch of Adaptive (0 = engine
	// default).
	EpochLength float64 `json:"epoch,omitempty"`
	// Seed seeds random-walk traces; same seed, same scenario.
	Seed int64 `json:"seed,omitempty"`
}

// Dynamic reports whether the scenario needs the event-driven
// simulator rather than the exact periodic replay.
func (s *Scenario) Dynamic() bool {
	return s.Tasks > 0 || s.Horizon > 0 || len(s.NodeLoad) > 0 ||
		len(s.EdgeLoad) > 0 || len(s.Slowdowns) > 0 || s.Adaptive || s.EpochLength > 0 ||
		s.Arrivals != nil || len(s.Failures) > 0
}

// label returns the report label for the scenario.
func (s *Scenario) label() string {
	if s.Name != "" {
		return s.Name
	}
	if s.Dynamic() {
		return "dynamic"
	}
	return "static"
}

// maxTraceKnots bounds per-trace breakpoints: scenarios cross the
// service boundary, so malformed or hostile specs must fail fast.
const maxTraceKnots = 100000

// Validate checks the scenario's own consistency (platform-dependent
// references are checked at run time).
func (s *Scenario) Validate() error {
	if s.Periods < 0 {
		return fmt.Errorf("sim: negative periods")
	}
	if s.Tasks < 0 || s.Horizon < 0 || s.EpochLength < 0 {
		return fmt.Errorf("sim: negative dynamic bounds")
	}
	for name, ts := range s.NodeLoad {
		if err := ts.validate(); err != nil {
			return fmt.Errorf("sim: node_load[%s]: %w", name, err)
		}
	}
	for key, ts := range s.EdgeLoad {
		if err := ts.validate(); err != nil {
			return fmt.Errorf("sim: edge_load[%s]: %w", key, err)
		}
		if _, _, err := splitEdgeKey(key); err != nil {
			return err
		}
	}
	seen := map[string]bool{}
	for i, sl := range s.Slowdowns {
		if err := sl.validate(); err != nil {
			return fmt.Errorf("sim: slowdown %d: %w", i, err)
		}
		key := "node:" + sl.Node
		if sl.Edge != "" {
			key = "edge:" + sl.Edge
		}
		if seen[key] {
			return fmt.Errorf("sim: slowdown %d repeats %s", i, key)
		}
		seen[key] = true
	}
	if s.Arrivals != nil {
		if err := s.Arrivals.validate(); err != nil {
			return fmt.Errorf("sim: arrivals: %w", err)
		}
	}
	windows := map[string][]event.Window{}
	for i, f := range s.Failures {
		if err := f.validate(); err != nil {
			return fmt.Errorf("sim: failure %d: %w", i, err)
		}
		key := "node:" + f.Node
		if f.Edge != "" {
			key = "edge:" + f.Edge
		}
		windows[key] = append(windows[key], event.Window{From: f.From, Until: f.Until})
	}
	for key, ws := range windows {
		sort.Slice(ws, func(i, j int) bool { return ws[i].From < ws[j].From })
		for i := 1; i < len(ws); i++ {
			if ws[i].From < ws[i-1].Until {
				return fmt.Errorf("sim: overlapping failure windows on %s", key)
			}
		}
	}
	return nil
}

// maxArrivals bounds generated arrival processes, like maxTraceKnots
// for load traces: scenarios cross the service boundary.
const maxArrivals = 100000

// ArrivalSpec describes a workload arrival process at the master.
// Kinds:
//
//	recorded  {"kind":"recorded","times":[...]}          replay a trace
//	poisson   {"kind":"poisson","rate":r,"count":n}      exponential gaps
//	bursty    {"kind":"bursty","burst":b,"every":e,"count":n}
//	          b simultaneous arrivals every e time units
//	diurnal   {"kind":"diurnal","rate":r,"period":p,"peak":a,"count":n}
//	          nonhomogeneous Poisson with rate r*(1+a*sin(2πt/p))
//
// Generator kinds draw from the scenario's seeded rng stream, so the
// same seed yields the same arrival times.
type ArrivalSpec struct {
	Kind   string    `json:"kind"`
	Times  []float64 `json:"times,omitempty"`
	Rate   float64   `json:"rate,omitempty"`
	Count  int       `json:"count,omitempty"`
	Burst  int       `json:"burst,omitempty"`
	Every  float64   `json:"every,omitempty"`
	Period float64   `json:"period,omitempty"`
	Peak   float64   `json:"peak,omitempty"`
}

// NumArrivals returns the number of tasks the process releases, so
// admission controllers can cost a scenario before running it.
func (a *ArrivalSpec) NumArrivals() int {
	if a == nil {
		return 0
	}
	if a.Kind == "recorded" {
		return len(a.Times)
	}
	return a.Count
}

func (a *ArrivalSpec) validate() error {
	switch a.Kind {
	case "recorded":
		if len(a.Times) == 0 {
			return fmt.Errorf("recorded arrivals need times")
		}
		if len(a.Times) > maxArrivals {
			return fmt.Errorf("recorded arrivals has %d times, limit %d", len(a.Times), maxArrivals)
		}
		for i, t := range a.Times {
			if t < 0 || math.IsNaN(t) || math.IsInf(t, 0) {
				return fmt.Errorf("recorded arrival %d has bad time %v", i, t)
			}
			if i > 0 && t < a.Times[i-1] {
				return fmt.Errorf("recorded arrival times must be non-decreasing")
			}
		}
	case "poisson":
		if a.Rate <= 0 {
			return fmt.Errorf("poisson arrivals need a positive rate")
		}
	case "bursty":
		if a.Burst <= 0 || a.Every <= 0 {
			return fmt.Errorf("bursty arrivals need positive burst and every")
		}
	case "diurnal":
		if a.Rate <= 0 || a.Period <= 0 {
			return fmt.Errorf("diurnal arrivals need positive rate and period")
		}
		if a.Peak < 0 || a.Peak > 1 {
			return fmt.Errorf("diurnal peak must be in [0,1]")
		}
	default:
		return fmt.Errorf("unknown arrival kind %q (recorded|poisson|bursty|diurnal)", a.Kind)
	}
	if a.Kind != "recorded" {
		if a.Count <= 0 {
			return fmt.Errorf("%s arrivals need a positive count", a.Kind)
		}
		if a.Count > maxArrivals {
			return fmt.Errorf("%s arrivals count %d exceeds limit %d", a.Kind, a.Count, maxArrivals)
		}
	}
	return nil
}

// times materializes the arrival process. rng is only consulted by
// the stochastic kinds.
func (a *ArrivalSpec) times(rng *rand.Rand) ([]float64, error) {
	if err := a.validate(); err != nil {
		return nil, err
	}
	switch a.Kind {
	case "recorded":
		return append([]float64(nil), a.Times...), nil
	case "poisson":
		out := make([]float64, 0, a.Count)
		t := 0.0
		for len(out) < a.Count {
			t += rng.ExpFloat64() / a.Rate
			out = append(out, t)
		}
		return out, nil
	case "bursty":
		out := make([]float64, 0, a.Count)
		for k := 0; len(out) < a.Count; k++ {
			for b := 0; b < a.Burst && len(out) < a.Count; b++ {
				out = append(out, float64(k)*a.Every)
			}
		}
		return out, nil
	default: // diurnal: Poisson thinning against the peak rate
		lamMax := a.Rate * (1 + a.Peak)
		out := make([]float64, 0, a.Count)
		t := 0.0
		for len(out) < a.Count {
			t += rng.ExpFloat64() / lamMax
			lam := a.Rate * (1 + a.Peak*math.Sin(2*math.Pi*t/a.Period))
			if rng.Float64()*lamMax <= lam {
				out = append(out, t)
			}
		}
		return out, nil
	}
}

// Failure takes the named node (or edge "from->to") fully offline
// during [From, Until): no compute or transfer may start on it, and
// demand is re-routed around it by the policies only in the sense
// that other requests keep being served.
type Failure struct {
	Node  string  `json:"node,omitempty"`
	Edge  string  `json:"edge,omitempty"`
	From  float64 `json:"from"`
	Until float64 `json:"until"`
}

func (f Failure) validate() error {
	if (f.Node == "") == (f.Edge == "") {
		return fmt.Errorf("needs exactly one of node or edge")
	}
	if f.Edge != "" {
		if _, _, err := splitEdgeKey(f.Edge); err != nil {
			return err
		}
	}
	if f.From < 0 || f.Until <= f.From {
		return fmt.Errorf("needs 0 <= from < until")
	}
	return nil
}

// TraceSpec is the serializable description of a piecewise-constant
// load trace (event.LoadTrace). Kinds:
//
//	constant     {"kind":"constant","value":m}
//	steps        {"kind":"steps","times":[0,...],"mult":[...]}
//	random-walk  {"kind":"random-walk","horizon":h,"step":s,"lo":l,"hi":u}
//
// An empty kind with a positive Value means constant.
type TraceSpec struct {
	Kind    string    `json:"kind,omitempty"`
	Value   float64   `json:"value,omitempty"`
	Times   []float64 `json:"times,omitempty"`
	Mult    []float64 `json:"mult,omitempty"`
	Horizon float64   `json:"horizon,omitempty"`
	Step    float64   `json:"step,omitempty"`
	Lo      float64   `json:"lo,omitempty"`
	Hi      float64   `json:"hi,omitempty"`
}

func (t TraceSpec) validate() error {
	switch t.Kind {
	case "", "constant":
		if t.Value <= 0 {
			return fmt.Errorf("constant trace needs a positive value")
		}
	case "steps":
		if len(t.Times) == 0 || len(t.Times) != len(t.Mult) {
			return fmt.Errorf("steps trace needs matching non-empty times and mult")
		}
		if len(t.Times) > maxTraceKnots {
			return fmt.Errorf("steps trace has %d knots, limit %d", len(t.Times), maxTraceKnots)
		}
		if t.Times[0] != 0 {
			return fmt.Errorf("steps trace must start at time 0")
		}
		for i := 1; i < len(t.Times); i++ {
			if t.Times[i] <= t.Times[i-1] {
				return fmt.Errorf("steps trace breakpoints must increase")
			}
		}
		for _, m := range t.Mult {
			if m <= 0 {
				return fmt.Errorf("steps trace multipliers must be positive")
			}
		}
	case "random-walk":
		if t.Horizon <= 0 || t.Step <= 0 {
			return fmt.Errorf("random-walk trace needs positive horizon and step")
		}
		if t.Horizon/t.Step > maxTraceKnots {
			return fmt.Errorf("random-walk trace would have over %d knots", maxTraceKnots)
		}
		if t.Lo <= 0 || t.Hi < t.Lo {
			return fmt.Errorf("random-walk trace needs 0 < lo <= hi")
		}
	default:
		return fmt.Errorf("unknown trace kind %q (constant|steps|random-walk)", t.Kind)
	}
	return nil
}

// trace materializes the spec. rng is only consulted by random-walk
// traces.
func (t TraceSpec) trace(rng *rand.Rand) (*event.LoadTrace, error) {
	if err := t.validate(); err != nil {
		return nil, err
	}
	switch t.Kind {
	case "", "constant":
		return event.ConstantLoad(t.Value), nil
	case "steps":
		return event.StepLoad(t.Times, t.Mult), nil
	default: // random-walk
		return event.RandomWalkLoad(rng, t.Horizon, t.Step, t.Lo, t.Hi), nil
	}
}

// Slowdown is step-trace sugar: the named node (or edge "from->to")
// runs Factor times slower during [From, Until). Until = 0 means
// forever; a very large Factor models a churned-out host.
type Slowdown struct {
	Node   string  `json:"node,omitempty"`
	Edge   string  `json:"edge,omitempty"`
	Factor float64 `json:"factor"`
	From   float64 `json:"from,omitempty"`
	Until  float64 `json:"until,omitempty"`
}

func (s Slowdown) validate() error {
	if (s.Node == "") == (s.Edge == "") {
		return fmt.Errorf("needs exactly one of node or edge")
	}
	if s.Edge != "" {
		if _, _, err := splitEdgeKey(s.Edge); err != nil {
			return err
		}
	}
	if s.Factor <= 0 {
		return fmt.Errorf("factor must be positive")
	}
	if s.From < 0 || (s.Until != 0 && s.Until <= s.From) {
		return fmt.Errorf("needs 0 <= from < until")
	}
	return nil
}

// spec renders the slowdown as an equivalent steps TraceSpec.
func (s Slowdown) spec() TraceSpec {
	times, mult := []float64{0}, []float64{1}
	if s.From == 0 {
		mult[0] = s.Factor
	} else {
		times = append(times, s.From)
		mult = append(mult, s.Factor)
	}
	if s.Until > 0 {
		times = append(times, s.Until)
		mult = append(mult, 1)
	}
	return TraceSpec{Kind: "steps", Times: times, Mult: mult}
}

// splitEdgeKey parses an "from->to" edge key.
func splitEdgeKey(key string) (from, to string, err error) {
	from, to, ok := strings.Cut(key, "->")
	if !ok || from == "" || to == "" {
		return "", "", fmt.Errorf("sim: edge key %q is not \"from->to\"", key)
	}
	return from, to, nil
}

// EdgeKey renders the canonical edge key for EdgeLoad and Slowdown.
func EdgeKey(from, to string) string { return from + "->" + to }

// Bundle pairs a platform with the scenario it was generated for, so
// the two travel together (cmd/platgen -trace emits bundles).
type Bundle struct {
	// Platform is the platform graph in the repository's canonical
	// JSON schema.
	Platform json.RawMessage `json:"platform"`
	// Scenario is the simulation scenario.
	Scenario Scenario `json:"scenario"`
}

// WriteBundle serializes a platform/scenario pair as JSON.
func WriteBundle(w io.Writer, p *platform.Platform, sc Scenario) error {
	var pb strings.Builder
	if err := p.WriteJSON(&pb); err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(Bundle{Platform: json.RawMessage(pb.String()), Scenario: sc})
}

// ReadBundle deserializes a bundle written by WriteBundle, validating
// both halves.
func ReadBundle(r io.Reader) (*platform.Platform, Scenario, error) {
	var b Bundle
	dec := json.NewDecoder(r)
	if err := dec.Decode(&b); err != nil {
		return nil, Scenario{}, fmt.Errorf("sim: decode bundle: %w", err)
	}
	p, err := platform.ReadJSON(strings.NewReader(string(b.Platform)))
	if err != nil {
		return nil, Scenario{}, err
	}
	if err := b.Scenario.Validate(); err != nil {
		return nil, Scenario{}, err
	}
	return p, b.Scenario, nil
}
