package sim

import (
	"context"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"sync"
	"time"

	"repro/pkg/steady"
	"repro/pkg/steady/batch"
	"repro/pkg/steady/platform"
)

// Cell is one (platform, solver spec, scenario) cell of a simulation
// sweep: the spec is solved on the platform (through the engine's
// shared LP-solution cache) and the result is simulated under the
// scenario.
type Cell struct {
	// ID is an optional caller-chosen label carried into the outcome.
	ID       string
	Platform *platform.Platform
	Spec     steady.Spec
	Scenario Scenario
	// Solver, when non-nil, is used instead of building one from
	// Spec. pkg/steady/server injects its concurrency-gated solver
	// here so sweep solves respect the service's in-flight bound.
	Solver steady.Solver
}

// CellOutcome is the terminal state of one sweep cell.
type CellOutcome struct {
	// ID echoes Cell.ID.
	ID string
	// Report is the simulation report; nil when Err is set.
	Report *Report
	Err    error
	// CacheHit reports that the cell's solve was served from the
	// shared LP-solution cache.
	CacheHit bool
	// Elapsed is the wall time of solve plus simulation.
	Elapsed time.Duration
}

// CellSink receives outcomes as they complete. Calls are serialized
// by the engine, so a sink may write to a shared stream without its
// own locking; a non-nil error stops the sweep.
type CellSink func(CellOutcome) error

// Sweep runs all cells with bounded parallelism (Config.Workers) and
// returns their outcomes in cell order. Distinct cells that share a
// (platform, spec) pair solve the LP once — the simulation engine
// rides the batch engine's sharded cache — so scenario grids over one
// platform family cost one solve per platform.
func (e *Engine) Sweep(ctx context.Context, cells []Cell) []CellOutcome {
	out := make([]CellOutcome, len(cells))
	e.sweep(ctx, cells, func(i int, o CellOutcome) error {
		out[i] = o
		return nil
	})
	return out
}

// StreamSweep runs all cells with bounded parallelism, delivering
// each outcome to sink in completion order (not cell order).
func (e *Engine) StreamSweep(ctx context.Context, cells []Cell, sink CellSink) error {
	return e.sweep(ctx, cells, func(_ int, o CellOutcome) error {
		return sink(o)
	})
}

// sweep is the worker-pool core shared by Sweep and StreamSweep,
// mirroring pkg/steady/batch's engine: a bounded pool drains a work
// channel, outcomes are emitted under one mutex, and cancellation
// marks unstarted cells rather than dropping them silently.
func (e *Engine) sweep(ctx context.Context, cells []Cell, emit func(int, CellOutcome) error) error {
	if len(cells) == 0 {
		return nil
	}
	workers := e.batch.Workers()
	if e.cfg.Workers > 0 {
		workers = e.cfg.Workers
	}
	if workers > len(cells) {
		workers = len(cells)
	}

	var (
		emitMu  sync.Mutex
		emitErr error
		stopped bool
		work    = make(chan int)
		wg      sync.WaitGroup
	)
	deliver := func(i int, o CellOutcome) {
		emitMu.Lock()
		defer emitMu.Unlock()
		if stopped {
			return
		}
		if err := emit(i, o); err != nil {
			emitErr = err
			stopped = true
		}
	}

	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range work {
				deliver(i, e.runCell(ctx, cells[i]))
			}
		}()
	}

feed:
	for i := range cells {
		emitMu.Lock()
		dead := stopped
		emitMu.Unlock()
		if dead {
			break feed
		}
		select {
		case work <- i:
		case <-ctx.Done():
			for j := i; j < len(cells); j++ {
				deliver(j, CellOutcome{ID: cells[j].ID, Err: ctx.Err()})
			}
			break feed
		}
	}
	close(work)
	wg.Wait()
	return emitErr
}

// runCell solves and simulates one cell, under the per-cell timeout
// when the engine has one.
func (e *Engine) runCell(ctx context.Context, cell Cell) (o CellOutcome) {
	start := time.Now()
	o = CellOutcome{ID: cell.ID}
	defer func() { o.Elapsed = time.Since(start) }()
	if e.cfg.CellTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, e.cfg.CellTimeout)
		defer cancel()
	}
	if cell.Platform == nil {
		o.Err = fmt.Errorf("sim: cell %q needs a platform", cell.ID)
		return o
	}
	solver := cell.Solver
	if solver == nil {
		var err error
		if solver, err = steady.New(cell.Spec); err != nil {
			o.Err = err
			return o
		}
	}
	outs := e.batch.Run(ctx, []batch.Job{{ID: cell.ID, Platform: cell.Platform, Solver: solver}})
	o.CacheHit = outs[0].CacheHit
	if outs[0].Err != nil {
		o.Err = outs[0].Err
		return o
	}
	o.Report, o.Err = e.Run(ctx, outs[0].Result, cell.Scenario)
	return o
}

// CellRecord is the serialized form of a CellOutcome shared by the
// JSON and CSV sinks. The embedded report keeps certified quantities
// as exact-rational strings.
type CellRecord struct {
	Cell     string  `json:"cell,omitempty"`
	Report   *Report `json:"report,omitempty"`
	CacheHit bool    `json:"cache_hit"`
	MicroSec int64   `json:"elapsed_us"`
	Err      string  `json:"error,omitempty"`
}

// ToCellRecord flattens an outcome for serialization.
func ToCellRecord(o CellOutcome) CellRecord {
	r := CellRecord{
		Cell:     o.ID,
		Report:   o.Report,
		CacheHit: o.CacheHit,
		MicroSec: o.Elapsed.Microseconds(),
	}
	if o.Err != nil {
		r.Err = o.Err.Error()
	}
	return r
}

// JSONCellSink returns a sink streaming one JSON object per line.
func JSONCellSink(w io.Writer) CellSink {
	enc := json.NewEncoder(w)
	return func(o CellOutcome) error {
		return enc.Encode(ToCellRecord(o))
	}
}

var cellCSVHeader = []string{
	"cell", "solver", "scenario", "kind", "certified", "achieved",
	"ratio", "steady_after", "periods", "makespan", "done",
	"cache_hit", "elapsed_us", "error",
}

// CSVCellSink returns a sink streaming CSV rows as cells complete,
// writing the header before the first record and flushing after every
// record so partial output is usable.
func CSVCellSink(w io.Writer) CellSink {
	cw := csv.NewWriter(w)
	wroteHeader := false
	return func(o CellOutcome) error {
		if !wroteHeader {
			if err := cw.Write(cellCSVHeader); err != nil {
				return err
			}
			wroteHeader = true
		}
		rec := ToCellRecord(o)
		row := make([]string, len(cellCSVHeader))
		row[0] = rec.Cell
		if rep := rec.Report; rep != nil {
			row[1] = rep.Solver
			row[2] = rep.Scenario
			row[3] = rep.Kind
			row[4] = rep.Certified
			row[5] = rep.Achieved
			row[6] = strconv.FormatFloat(rep.RatioValue, 'g', -1, 64)
			row[7] = strconv.FormatInt(rep.SteadyAfter, 10)
			row[8] = strconv.FormatInt(rep.Periods, 10)
			row[9] = strconv.FormatFloat(rep.Makespan, 'g', -1, 64)
			row[10] = strconv.Itoa(rep.Done)
		}
		row[11] = strconv.FormatBool(rec.CacheHit)
		row[12] = strconv.FormatInt(rec.MicroSec, 10)
		row[13] = rec.Err
		if err := cw.Write(row); err != nil {
			return err
		}
		cw.Flush()
		return cw.Error()
	}
}
