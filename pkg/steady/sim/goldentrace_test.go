package sim

import (
	"bytes"
	"context"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/pkg/steady"
	"repro/pkg/steady/platform"
)

var updateTraces = flag.Bool("update", false, "rewrite the golden event traces under testdata/traces")

// goldenCells are the replayable reference runs: the two paper figures
// under the three canonical scenario families (exact static replay,
// mid-stream slowdown, adaptive re-solving). Sizes are kept small so
// the goldens stay reviewable.
func goldenCells() []struct {
	name string
	spec steady.Spec
	p    *platform.Platform
	sc   Scenario
} {
	fig1 := platform.Figure1()
	fig2 := platform.Figure2()
	ms1 := steady.Spec{Problem: "masterslave", Root: "P1"}
	ms2 := steady.Spec{Problem: "masterslave", Root: "P0"}
	return []struct {
		name string
		spec steady.Spec
		p    *platform.Platform
		sc   Scenario
	}{
		{"fig1-static", ms1, fig1, Scenario{Periods: 8}},
		{"fig1-slowdown", ms1, fig1,
			Scenario{Tasks: 40, Slowdowns: []Slowdown{{Node: "P2", Factor: 2, From: 10, Until: 60}}}},
		{"fig1-adaptive", ms1, fig1,
			Scenario{Tasks: 40, Adaptive: true, EpochLength: 10,
				Slowdowns: []Slowdown{{Node: "P2", Factor: 2, From: 10, Until: 60}}}},
		{"fig2-static", ms2, fig2, Scenario{Periods: 8}},
		{"fig2-slowdown", ms2, fig2,
			Scenario{Tasks: 40, Slowdowns: []Slowdown{{Edge: "P3->P4", Factor: 3, From: 5, Until: 40}}}},
		{"fig2-adaptive", ms2, fig2,
			Scenario{Tasks: 40, Adaptive: true, EpochLength: 15,
				Slowdowns: []Slowdown{{Edge: "P3->P4", Factor: 3, From: 5, Until: 40}}}},
	}
}

// TestGoldenEventTraces replays each reference cell and compares the
// JSONL event trace byte-for-byte against the committed golden file.
// Regenerate after an intentional trace-schema or semantics change
// with:
//
//	go test ./pkg/steady/sim -run TestGoldenEventTraces -update
func TestGoldenEventTraces(t *testing.T) {
	eng := New(Config{})
	for _, c := range goldenCells() {
		c := c
		t.Run(c.name, func(t *testing.T) {
			res := solveOn(t, c.spec, c.p)
			var buf bytes.Buffer
			rep, err := eng.RunTraced(context.Background(), res, c.sc, &buf)
			if err != nil {
				t.Fatalf("RunTraced: %v", err)
			}
			if rep.TraceEvents == 0 || int64(bytes.Count(buf.Bytes(), []byte("\n"))) != rep.TraceEvents {
				t.Fatalf("trace_events = %d, trace has %d lines",
					rep.TraceEvents, bytes.Count(buf.Bytes(), []byte("\n")))
			}
			path := filepath.Join("testdata", "traces", c.name+".jsonl")
			if *updateTraces {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (regenerate with -update)", err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Errorf("trace differs from %s (%d vs %d bytes); regenerate with -update if intentional",
					path, buf.Len(), len(want))
			}
		})
	}
}
