package sim

import (
	"encoding/json"
	"testing"
)

// FuzzScenarioJSON fuzzes the scenario decode/validate path — the
// exact bytes POST /v1/simulate and bundle files feed it. Properties:
// Validate never panics, and a scenario that validates survives a
// JSON round-trip with its validity, label, and dynamic/static
// classification intact.
func FuzzScenarioJSON(f *testing.F) {
	for _, seed := range []string{
		`{}`,
		`{"periods":100}`,
		`{"name":"slow","tasks":500,"slowdowns":[{"node":"P2","factor":2,"from":50,"until":200}]}`,
		`{"adaptive":true,"epoch":25,"seed":7}`,
		`{"horizon":300,"node_load":{"P2":{"kind":"random-walk","horizon":300,"step":10,"lo":1,"hi":4}}}`,
		`{"edge_load":{"P1->P2":{"kind":"steps","times":[0,50],"mult":[1,3]}}}`,
		`{"arrivals":{"kind":"poisson","rate":2,"count":100}}`,
		`{"arrivals":{"kind":"recorded","times":[0,1,2.5,7]}}`,
		`{"arrivals":{"kind":"bursty","burst":10,"every":5,"count":50}}`,
		`{"arrivals":{"kind":"diurnal","rate":1,"period":100,"peak":0.5,"count":40}}`,
		`{"failures":[{"node":"P4","from":5,"until":25},{"edge":"P1->P3","from":10,"until":30}]}`,
		`{"tasks":-1}`,
		`{"failures":[{"node":"P4","edge":"P1->P2","from":0,"until":1}]}`,
		`{"arrivals":{"kind":"poisson","rate":-2,"count":10}}`,
	} {
		f.Add([]byte(seed))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var sc Scenario
		if err := json.Unmarshal(data, &sc); err != nil {
			return
		}
		if err := sc.Validate(); err != nil {
			return
		}
		wasDynamic, wasLabel := sc.Dynamic(), sc.label()
		out, err := json.Marshal(sc)
		if err != nil {
			t.Fatalf("marshal valid scenario: %v", err)
		}
		var back Scenario
		if err := json.Unmarshal(out, &back); err != nil {
			t.Fatalf("re-decode own encoding: %v\n%s", err, out)
		}
		if err := back.Validate(); err != nil {
			t.Fatalf("round-trip broke validity: %v\n%s", err, out)
		}
		if back.Dynamic() != wasDynamic || back.label() != wasLabel {
			t.Fatalf("round-trip changed classification: dynamic %v->%v label %q->%q",
				wasDynamic, back.Dynamic(), wasLabel, back.label())
		}
	})
}
