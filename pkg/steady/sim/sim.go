// Package sim is the public simulation subsystem of the reproduction:
// it replays the reconstructed periodic schedule of any solved
// steady-state problem (every registered pkg/steady solver) in
// simulated time and reports achieved versus certified throughput,
// the startup transient, and the asymptotic-optimality ratio — §4.2's
// "asymptotically optimal" made measurable.
//
// One deterministic event core (pkg/steady/sim/event) backs both
// scenario kinds:
//
//   - Static scenarios run an exact, period-granular store-and-forward
//     replay of the schedule's integral per-period counts (big.Int
//     arithmetic, no floats) as period events on the shared loop: a
//     node forwards or consumes only what it received in earlier
//     periods, so the transient and the achieved rate are exact. Once
//     every commodity sustains its per-period quota the remaining
//     horizon is extrapolated arithmetically, so long horizons cost
//     nothing.
//   - Dynamic scenarios run the float64 online one-port simulator of
//     §5.5 on the same loop: demand-driven tasking on a shortest-path
//     overlay under bandwidth and speed traces, arrival processes,
//     failure windows, and optionally the adaptive epoch-based
//     re-solver of internal/adaptive.
//
// The float boundary is explicit: certified quantities stay exact
// rationals end to end, and only scenario dynamics (load multipliers,
// event times) are float64 — see docs/ARCHITECTURE.md. Both paths can
// emit a structured event trace (RunRecorded/RunTraced), and two runs
// of the same scenario with the same seed produce byte-identical
// traces.
//
// Engine.Sweep fans (platform, solver, scenario) cells through a
// worker pool that shares pkg/steady/batch's sharded LP-solution
// cache, with streaming JSON/CSV sinks; pkg/steady/server serves the
// same engine over HTTP as POST /v1/simulate.
package sim

import (
	"context"
	"fmt"
	"io"
	"math/big"
	"time"

	"repro/pkg/steady"
	"repro/pkg/steady/batch"
	"repro/pkg/steady/obs"
	"repro/pkg/steady/rat"
	"repro/pkg/steady/sim/event"
)

// Config tunes an Engine. The zero value selects sensible defaults.
type Config struct {
	// TargetRatio is the asymptotic-optimality ratio the automatic
	// static horizon is sized for; 0 = 0.95.
	TargetRatio float64
	// MaxPeriods caps any static replay horizon (requested or
	// automatic); 0 = 1<<20.
	MaxPeriods int64
	// DefaultTasks is the task count of dynamic scenarios that set
	// neither Tasks nor Horizon; 0 = 2000.
	DefaultTasks int
	// Workers bounds Sweep's worker pool; 0 = GOMAXPROCS.
	Workers int
	// CellTimeout bounds each sweep cell (solve plus simulation)
	// individually; 0 = no per-cell bound beyond the caller's context.
	// pkg/steady/server sets this so one pathological cell cannot
	// hold a sweep worker indefinitely.
	CellTimeout time.Duration
	// Obs, when non-nil, receives per-run metrics: run and error
	// counts by kind, events processed, the event-heap high-water
	// mark, extrapolation fast-path hits, and per-run wall time.
	// Observation is strictly one-way — wall clocks feed the registry,
	// never the simulation, so traces and reports are byte-identical
	// with or without it (proven by TestTraceMatchesUntracedRun).
	Obs *obs.Registry
}

// DefaultDynamicTasks is the task count substituted for dynamic
// scenarios that set neither Tasks nor Horizon. Exported so admission
// controllers (pkg/steady/server) can cap what an empty scenario will
// actually cost before running it.
const DefaultDynamicTasks = 2000

func (c Config) withDefaults() Config {
	if c.TargetRatio <= 0 || c.TargetRatio >= 1 {
		c.TargetRatio = 0.95
	}
	if c.MaxPeriods <= 0 {
		c.MaxPeriods = 1 << 20
	}
	if c.DefaultTasks <= 0 {
		c.DefaultTasks = DefaultDynamicTasks
	}
	return c
}

// Engine simulates solved steady-state problems under scenarios. An
// Engine is safe for concurrent use; construct with New or
// NewWithBatch.
type Engine struct {
	cfg   Config
	batch *batch.Engine
}

// New returns an Engine with its own batch solve engine (used by
// Sweep to solve cells through the shared LP-solution cache).
func New(cfg Config) *Engine {
	cfg = cfg.withDefaults()
	return &Engine{cfg: cfg, batch: batch.New(cfg.Workers)}
}

// NewWithBatch returns an Engine sweeping through an existing batch
// engine, so simulation sweeps share a cache with other consumers
// (pkg/steady/server shares one across all its endpoints).
func NewWithBatch(cfg Config, b *batch.Engine) *Engine {
	cfg = cfg.withDefaults()
	if b == nil {
		b = batch.New(cfg.Workers)
	}
	return &Engine{cfg: cfg, batch: b}
}

// Report is the outcome of simulating one solved problem under one
// scenario. Exact rationals are rendered as strings ("4/3"); the
// *Value fields are nearest-float64 conveniences. For static replays
// every rational is exact; dynamic runs are float by nature and leave
// the exact fields empty.
type Report struct {
	// Solver, Problem and Model echo the simulated result.
	Solver  string `json:"solver"`
	Problem string `json:"problem"`
	Model   string `json:"model"`
	// Scenario is the scenario label.
	Scenario string `json:"scenario"`
	// Kind is the simulation substrate: "periodic" (exact replay),
	// "online" (event-driven dynamic run) or "greedy" (send-or-receive
	// evaluation).
	Kind string `json:"kind"`
	// Derived names the companion schedule replayed when the problem
	// itself has bound semantics ("multicast-trees"), empty otherwise.
	Derived string `json:"derived,omitempty"`

	// Certified is the LP objective the run is measured against.
	Certified      string  `json:"certified"`
	CertifiedValue float64 `json:"certified_value"`
	// ScheduleThroughput is the replayed schedule's own steady-state
	// rate (periodic runs): when it sits below Certified the problem's
	// bound is not met by any schedule in the replayed class — the
	// §4.3 multicast gap — as opposed to a ratio below 1 that merely
	// reflects the startup transient.
	ScheduleThroughput string `json:"schedule_throughput,omitempty"`
	// Achieved is the simulated throughput (exact for periodic runs).
	Achieved      string  `json:"achieved,omitempty"`
	AchievedValue float64 `json:"achieved_value"`
	// Ratio is Achieved / Certified, the asymptotic-optimality ratio.
	Ratio      string  `json:"ratio,omitempty"`
	RatioValue float64 `json:"ratio_value"`

	// Periods is the simulated horizon in periods and Period the
	// period length T (periodic runs).
	Periods int64  `json:"periods,omitempty"`
	Period  string `json:"period,omitempty"`
	// SteadyAfter is the first period whose completions sustain every
	// per-period quota — the startup transient length (-1 = not
	// reached; unused kinds report 0 transient as -1 too).
	SteadyAfter int64 `json:"steady_after"`
	// Ops is the total number of completed operations.
	Ops string `json:"ops,omitempty"`

	// Makespan, Done and Resolves describe dynamic runs: simulated
	// end time, tasks completed, and adaptive LP re-solves.
	// WarmResolves is the subset of Resolves that warm-started from
	// the previous epoch's optimal basis, and LPPivots the total
	// simplex pivots across all of them — the order-of-magnitude
	// spread between pivots-per-cold-solve and pivots-per-warm-resolve
	// is what basis carry-over buys the §5.5 adaptive loop.
	Makespan     float64 `json:"makespan,omitempty"`
	Done         int     `json:"done,omitempty"`
	Resolves     int     `json:"resolves,omitempty"`
	WarmResolves int     `json:"warm_resolves,omitempty"`
	LPPivots     int64   `json:"lp_pivots,omitempty"`
	// Arrived is the number of tasks released by the scenario's
	// arrival process (0 when the master's supply is unbounded).
	Arrived int `json:"arrived,omitempty"`

	// TraceEvents is the number of structured trace records the run
	// emitted (0 unless the run was traced via RunRecorded/RunTraced
	// or the server's trace option).
	TraceEvents int64 `json:"trace_events,omitempty"`
}

// Run simulates the solved result under the scenario. Static
// scenarios replay the reconstructed schedule of any registered
// problem (deriving a tree-packing companion for the bound-semantics
// ones); dynamic scenarios require a masterslave result under the
// base port model; send-or-receive masterslave results are evaluated
// with the greedy §5.1.1 decomposition.
func (e *Engine) Run(ctx context.Context, res *steady.Result, sc Scenario) (*Report, error) {
	return e.RunRecorded(ctx, res, sc, nil)
}

// RunRecorded runs like Run while streaming the structured event
// trace of the simulation to rec (see event.Record for the schema;
// nil rec disables tracing). The trace is deterministic: the same
// result, scenario, and seed yield the same record sequence.
func (e *Engine) RunRecorded(ctx context.Context, res *steady.Result, sc Scenario, rec event.Recorder) (*Report, error) {
	if res == nil {
		return nil, fmt.Errorf("sim: nil result")
	}
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	l := event.NewLoop()
	l.SetRecorder(rec)
	reg := e.cfg.Obs
	span := reg.StartSpan("sim_run")
	var (
		rep *Report
		err error
	)
	switch {
	case sc.Dynamic():
		rep, err = e.runDynamic(ctx, res, &sc, l)
	case res.Model == steady.SendOrReceive:
		// The greedy send-or-receive evaluation is a closed-form
		// decomposition, not a simulation: it has no events to trace.
		rep, err = greedyReport(res, &sc)
	default:
		rep, err = e.runPeriodic(ctx, res, &sc, l)
	}
	span.End()
	// Metrics are recorded after the run completes: the simulation
	// itself never touches the registry or a wall clock, which is what
	// keeps traces byte-identical with metrics enabled.
	if err != nil {
		reg.Counter("steady_sim_errors_total", "Simulation runs that returned an error.").Inc()
		return nil, err
	}
	reg.CounterVec("steady_sim_runs_total", "Simulation runs by kind.", "kind").With(rep.Kind).Inc()
	reg.Counter("steady_sim_events_total", "Events executed by the deterministic loop.").Add(l.Processed())
	reg.Gauge("steady_sim_heap_depth_highwater", "Deepest pending-event heap observed across runs.").SetMax(float64(l.MaxHeap()))
	rep.TraceEvents = l.Events()
	return rep, nil
}

// RunTraced runs like Run while writing the structured event trace as
// JSON lines to w — the on-disk/golden format of event traces.
func (e *Engine) RunTraced(ctx context.Context, res *steady.Result, sc Scenario, w io.Writer) (*Report, error) {
	rec := event.NewWriterRecorder(w)
	rep, err := e.RunRecorded(ctx, res, sc, rec)
	if err != nil {
		return nil, err
	}
	if err := rec.Err(); err != nil {
		return nil, fmt.Errorf("sim: writing trace: %w", err)
	}
	return rep, nil
}

// runPeriodic prepares the replay spec and executes the exact
// period-granular replay on the event loop.
func (e *Engine) runPeriodic(ctx context.Context, res *steady.Result, sc *Scenario, l *event.Loop) (*Report, error) {
	rp, err := res.Replay()
	if err != nil {
		return nil, err
	}
	periods := sc.Periods
	if periods <= 0 {
		periods = autoPeriods(e.cfg.TargetRatio, rp)
	}
	if periods > e.cfg.MaxPeriods {
		periods = e.cfg.MaxPeriods
	}
	st, err := replayPeriodic(ctx, rp, periods, l)
	if err != nil {
		return nil, err
	}
	if st.Simulated < st.Periods {
		e.cfg.Obs.Counter("steady_sim_extrapolations_total",
			"Periodic replays that confirmed steady state early and extrapolated the remaining horizon.").Inc()
	}
	achieved := st.Ratio.Mul(rp.ScheduleThroughput)
	ratio := rat.Zero()
	if rp.Certified.Sign() > 0 {
		ratio = achieved.Div(rp.Certified)
	}
	return &Report{
		Solver:             res.Solver,
		Problem:            res.Problem,
		Model:              res.Model.String(),
		Scenario:           sc.label(),
		Kind:               "periodic",
		Derived:            rp.Derived,
		Certified:          rp.Certified.String(),
		CertifiedValue:     rp.Certified.Float64(),
		ScheduleThroughput: rp.ScheduleThroughput.String(),
		Achieved:           achieved.String(),
		AchievedValue:      achieved.Float64(),
		Ratio:              ratio.String(),
		RatioValue:         ratio.Float64(),
		Periods:            st.Periods,
		Period:             rp.Period.String(),
		SteadyAfter:        st.SteadyAfter,
		Ops:                st.Ops.String(),
	}, nil
}

// autoPeriods returns the smallest horizon that provably reaches the
// target ratio: the transient is bounded by the platform depth (≤ the
// node count), and after it every period completes the full quota, so
// ratio(P) ≥ (P - n) / P.
func autoPeriods(target float64, rp *steady.Replay) int64 {
	n := int64(rp.Platform.NumNodes())
	p := int64(float64(n)/(1-target)) + 2
	if p < 4 {
		p = 4
	}
	return p
}

// greedyReport evaluates a send-or-receive masterslave result with
// the greedy general-graph decomposition (§5.1.1): reconstruction is
// NP-hard under the shared-port model, so the achieved throughput of
// the greedy schedule stands in for a replay.
func greedyReport(res *steady.Result, sc *Scenario) (*Report, error) {
	ev, err := res.EvaluateGreedy()
	if err != nil {
		return nil, err
	}
	ratio := rat.Zero()
	if ev.Bound.Sign() > 0 {
		ratio = ev.Achieved.Div(ev.Bound)
	}
	return &Report{
		Solver:         res.Solver,
		Problem:        res.Problem,
		Model:          res.Model.String(),
		Scenario:       sc.label(),
		Kind:           "greedy",
		Certified:      ev.Bound.String(),
		CertifiedValue: ev.Bound.Float64(),
		Achieved:       ev.Achieved.String(),
		AchievedValue:  ev.Achieved.Float64(),
		Ratio:          ratio.String(),
		RatioValue:     ratio.Float64(),
		SteadyAfter:    -1,
	}, nil
}

// bigRat turns an integer pair a/b into an exact rat.Rat.
func bigRat(a, b *big.Int) rat.Rat {
	return rat.FromBig(new(big.Rat).SetFrac(a, b))
}
