package sim

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"testing"

	"repro/pkg/steady"
	"repro/pkg/steady/obs"
	"repro/pkg/steady/platform"
)

// determinismCells is the (scenario x solver) grid of the determinism
// property test: every registered replay substrate and every dynamic
// feature (load traces, arrival generators, failure windows, the
// adaptive re-solver) appears at least once.
func determinismCells() []struct {
	name string
	spec steady.Spec
	p    *platform.Platform
	sc   Scenario
} {
	fig1 := platform.Figure1()
	fig2 := platform.Figure2()
	ms1 := steady.Spec{Problem: "masterslave", Root: "P1"}
	return []struct {
		name string
		spec steady.Spec
		p    *platform.Platform
		sc   Scenario
	}{
		{"static-masterslave", ms1, fig1, Scenario{Periods: 50}},
		{"static-scatter", steady.Spec{Problem: "scatter", Root: "P1", Targets: []string{"P4", "P6"}}, fig1,
			Scenario{Periods: 50}},
		{"static-multicast-trees", steady.Spec{Problem: "multicast-trees", Root: "P0", Targets: []string{"P5", "P6"}}, fig2,
			Scenario{Periods: 50}},
		{"dynamic-slowdown", ms1, fig1,
			Scenario{Tasks: 60, Slowdowns: []Slowdown{{Node: "P2", Factor: 2, From: 10, Until: 60}}}},
		{"dynamic-walk", ms1, fig1,
			Scenario{Tasks: 60, Seed: 7, NodeLoad: map[string]TraceSpec{
				"P2": {Kind: "random-walk", Horizon: 200, Step: 10, Lo: 1, Hi: 3},
				"P5": {Kind: "random-walk", Horizon: 200, Step: 10, Lo: 1, Hi: 2},
			}}},
		{"dynamic-adaptive", ms1, fig1,
			Scenario{Tasks: 60, Adaptive: true, EpochLength: 10,
				Slowdowns: []Slowdown{{Edge: "P1->P2", Factor: 3, From: 20, Until: 80}}}},
		{"dynamic-poisson", ms1, fig1,
			Scenario{Seed: 11, Arrivals: &ArrivalSpec{Kind: "poisson", Rate: 2, Count: 80}}},
		{"dynamic-bursty", ms1, fig1,
			Scenario{Arrivals: &ArrivalSpec{Kind: "bursty", Burst: 10, Every: 8, Count: 60}}},
		{"dynamic-diurnal", ms1, fig1,
			Scenario{Seed: 3, Arrivals: &ArrivalSpec{Kind: "diurnal", Rate: 2, Period: 40, Peak: 0.8, Count: 60}}},
		{"dynamic-recorded", ms1, fig1,
			Scenario{Arrivals: &ArrivalSpec{Kind: "recorded", Times: []float64{0, 0, 1.5, 3, 7, 7, 12}}}},
		{"dynamic-failures", ms1, fig1,
			Scenario{Tasks: 60, Failures: []Failure{
				{Node: "P4", From: 5, Until: 25},
				{Edge: "P1->P3", From: 10, Until: 30},
			}}},
		{"dynamic-horizon-fig2", steady.Spec{Problem: "masterslave", Root: "P0"}, fig2,
			Scenario{Horizon: 150, Slowdowns: []Slowdown{{Node: "P3", Factor: 4, From: 30}}}},
	}
}

// tracedRun executes one cell with tracing and returns the canonical
// byte forms compared by the determinism tests: the JSONL event trace
// and the JSON-encoded report.
func tracedRun(t *testing.T, eng *Engine, res *steady.Result, sc Scenario) (trace, report []byte) {
	t.Helper()
	var buf bytes.Buffer
	rep, err := eng.RunTraced(context.Background(), res, sc, &buf)
	if err != nil {
		t.Fatalf("RunTraced: %v", err)
	}
	out, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), out
}

// TestDeterministicReplay is the tentpole property test: every
// (scenario x solver) cell, run twice with the same seed, produces a
// byte-identical report and byte-identical event trace. CI runs this
// under -race, so any hidden shared state or map-order dependence in
// the event core surfaces here.
func TestDeterministicReplay(t *testing.T) {
	eng := New(Config{})
	for _, c := range determinismCells() {
		c := c
		t.Run(c.name, func(t *testing.T) {
			res := solveOn(t, c.spec, c.p)
			trace1, rep1 := tracedRun(t, eng, res, c.sc)
			trace2, rep2 := tracedRun(t, eng, res, c.sc)
			if !bytes.Equal(rep1, rep2) {
				t.Errorf("same seed, different reports:\n%s\n%s", rep1, rep2)
			}
			if !bytes.Equal(trace1, trace2) {
				t.Errorf("same seed, different traces (%d vs %d bytes)", len(trace1), len(trace2))
			}
			if len(trace1) == 0 {
				t.Error("trace is empty")
			}
			// The trace must be well-formed JSONL with dense sequence
			// numbers from 0 — the replayability contract.
			dec := json.NewDecoder(bytes.NewReader(trace1))
			var seq int64
			for dec.More() {
				var rec map[string]any
				if err := dec.Decode(&rec); err != nil {
					t.Fatalf("record %d: %v", seq, err)
				}
				if got := int64(rec["seq"].(float64)); got != seq {
					t.Fatalf("record %d has seq %d", seq, got)
				}
				seq++
			}
		})
	}
}

// TestDeterministicSeedDivergence is the complement: cells whose
// scenario consumes randomness must produce different traces under
// different seeds (otherwise the seed is not actually plumbed through).
func TestDeterministicSeedDivergence(t *testing.T) {
	eng := New(Config{})
	for _, c := range determinismCells() {
		c := c
		seeded := c.sc.Arrivals != nil && c.sc.Arrivals.Kind != "recorded" && c.sc.Arrivals.Kind != "bursty"
		for _, ts := range c.sc.NodeLoad {
			if ts.Kind == "random-walk" {
				seeded = true
			}
		}
		if !seeded {
			continue
		}
		t.Run(c.name, func(t *testing.T) {
			res := solveOn(t, c.spec, c.p)
			trace1, _ := tracedRun(t, eng, res, c.sc)
			other := c.sc
			other.Seed += 1
			trace2, _ := tracedRun(t, eng, res, other)
			if bytes.Equal(trace1, trace2) {
				t.Errorf("seeds %d and %d produced identical traces", c.sc.Seed, other.Seed)
			}
		})
	}
}

// TestTraceMatchesUntracedRun pins that observation does not change
// the simulation, in two layers: attaching a recorder must leave the
// report (minus the trace_events counter) equal to the untraced
// run's, and attaching a metrics registry (Config.Obs) must leave
// both the report and the event trace byte-identical — the
// trace-purity invariant the observability layer is built on.
func TestTraceMatchesUntracedRun(t *testing.T) {
	eng := New(Config{})
	reg := obs.New()
	obsEng := New(Config{Obs: reg})
	for _, c := range determinismCells() {
		c := c
		t.Run(c.name, func(t *testing.T) {
			res := solveOn(t, c.spec, c.p)
			plain, err := eng.Run(context.Background(), res, c.sc)
			if err != nil {
				t.Fatal(err)
			}
			trace, traced := tracedRun(t, eng, res, c.sc)
			var got Report
			if err := json.Unmarshal(traced, &got); err != nil {
				t.Fatal(err)
			}
			if got.TraceEvents == 0 {
				t.Error("traced run reported no trace events")
			}
			got.TraceEvents = 0
			want := fmt.Sprintf("%+v", *plain)
			if have := fmt.Sprintf("%+v", got); have != want {
				t.Errorf("tracing changed the report:\n traced: %s\n plain:  %s", have, want)
			}

			// Metrics leg: the same cell through an engine with a live
			// registry must produce byte-identical trace and report.
			obsTrace, obsRep := tracedRun(t, obsEng, res, c.sc)
			if !bytes.Equal(obsTrace, trace) {
				t.Errorf("metrics collection changed the trace (%d vs %d bytes)", len(obsTrace), len(trace))
			}
			if !bytes.Equal(obsRep, traced) {
				t.Errorf("metrics collection changed the report:\n observed: %s\n plain:    %s", obsRep, traced)
			}
		})
	}
	// The registry must actually have seen the runs — a silently
	// detached registry would make the purity check vacuous.
	runs := reg.CounterVec("steady_sim_runs_total", "", "kind")
	total := runs.With("periodic").Value() + runs.With("online").Value() + runs.With("greedy").Value()
	if total != int64(len(determinismCells())) {
		t.Errorf("observed engine recorded %d runs, want %d", total, len(determinismCells()))
	}
	if reg.Counter("steady_sim_events_total", "").Value() == 0 {
		t.Error("observed engine recorded no events")
	}
}
