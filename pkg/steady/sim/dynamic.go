package sim

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/adaptive"
	"repro/pkg/steady"
	"repro/pkg/steady/platform"
	"repro/pkg/steady/sim/event"
)

// defaultEpoch is the re-planning epoch of adaptive scenarios that do
// not set one.
const defaultEpoch = 25.0

// runDynamic executes a dynamic scenario on the event core's online
// one-port simulator: demand-driven master-slave tasking on a
// shortest-path overlay, with per-resource load traces, arrival
// processes, failure windows, and optionally the §5.5 adaptive
// re-solver. Only masterslave results under the base model are
// dynamic-simulatable; the distribution problems ship data, not
// tasks, and have no demand-driven online form here.
func (e *Engine) runDynamic(ctx context.Context, res *steady.Result, sc *Scenario, l *event.Loop) (*Report, error) {
	if res.Problem != "masterslave" {
		return nil, fmt.Errorf("sim: dynamic scenarios require a masterslave result, got %s", res.Problem)
	}
	if res.Model != steady.SendAndReceive {
		return nil, fmt.Errorf("sim: dynamic scenarios require the send-and-receive model")
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	rp, err := res.Replay()
	if err != nil {
		return nil, err
	}
	p := rp.Platform
	master := rp.Commodities[0].Source
	tree, err := event.ShortestPathTree(p, master)
	if err != nil {
		return nil, err
	}

	nodeLoad, edgeLoad, err := sc.loads(p)
	if err != nil {
		return nil, err
	}
	nodeDown, edgeDown, err := sc.outages(p)
	if err != nil {
		return nil, err
	}

	cfg := event.OnlineConfig{
		Platform:  p,
		Tree:      tree,
		Master:    master,
		Tasks:     sc.Tasks,
		Horizon:   sc.Horizon,
		NodeLoad:  nodeLoad,
		EdgeLoad:  edgeLoad,
		NodeDown:  nodeDown,
		EdgeDown:  edgeDown,
		Interrupt: ctx.Done(),
		Loop:      l,
	}
	if sc.Arrivals != nil {
		// Arrival times draw from their own seeded stream (seed+2) so
		// adding an arrival process never perturbs the load traces.
		arng := rand.New(rand.NewSource(sc.Seed + 2))
		if cfg.Arrivals, err = sc.Arrivals.times(arng); err != nil {
			return nil, err
		}
	} else if cfg.Tasks == 0 && cfg.Horizon == 0 {
		cfg.Tasks = e.cfg.DefaultTasks
	}

	var ctl *adaptive.Controller
	if sc.Adaptive {
		c, pol, err := adaptive.NewController(p, master, tree)
		if err != nil {
			return nil, err
		}
		ctl = c
		cfg.Policy = pol
		cfg.EpochLength = sc.EpochLength
		if cfg.EpochLength <= 0 {
			cfg.EpochLength = defaultEpoch
		}
		cfg.OnEpoch = ctl.OnEpoch
		if l != nil && l.Recording() {
			// Wrap the controller hook so each successful re-solve
			// leaves a "resolve" record in the trace.
			cfg.OnEpoch = func(now float64, obs *event.EpochObservation) {
				resolves, warm, pivots := ctl.Resolves, ctl.WarmResolves, ctl.Pivots
				ctl.OnEpoch(now, obs)
				if ctl.Resolves > resolves {
					note := "cold"
					if ctl.WarmResolves > warm {
						note = "warm"
					}
					l.Emit(event.Record{Kind: "resolve", Note: note,
						Task: ctl.Pivots - pivots, Value: ctl.LastThroughput.Float64()})
				}
			}
		}
	} else {
		// Fixed LP-quota policy: serve the child furthest behind the
		// solved steady-state edge rates.
		q := &quotaPolicy{tree: tree, rate: make([]float64, p.NumEdges())}
		T := rp.Period
		for e := 0; e < p.NumEdges(); e++ {
			if n := rp.Commodities[0].EdgeCount[e]; n != nil {
				q.rate[e] = bigRat(n, T).Float64()
			}
		}
		cfg.Policy = q
	}

	out, err := event.RunOnlineMasterSlave(cfg)
	if err != nil {
		// Surface a timeout/cancellation as the context's error so
		// callers (pkg/steady/server) map it to the right status.
		if errors.Is(err, event.ErrInterrupted) && ctx.Err() != nil {
			return nil, ctx.Err()
		}
		return nil, err
	}

	rep := &Report{
		Solver:         res.Solver,
		Problem:        res.Problem,
		Model:          res.Model.String(),
		Scenario:       sc.label(),
		Kind:           "online",
		Certified:      res.Throughput.String(),
		CertifiedValue: res.ThroughputFloat(),
		SteadyAfter:    -1,
		Makespan:       out.Makespan,
		Done:           out.Done,
		Arrived:        out.Arrived,
	}
	if out.Makespan > 0 {
		rep.AchievedValue = float64(out.Done) / out.Makespan
		if rep.CertifiedValue > 0 {
			rep.RatioValue = rep.AchievedValue / rep.CertifiedValue
		}
	}
	if ctl != nil {
		rep.Resolves = ctl.Resolves
		rep.WarmResolves = ctl.WarmResolves
		rep.LPPivots = ctl.Pivots
	}
	return rep, nil
}

// loads materializes the scenario's traces against a concrete
// platform, merging Slowdowns into the per-resource trace maps.
func (sc *Scenario) loads(p *platform.Platform) (nodes, edges []*event.LoadTrace, err error) {
	rng := rand.New(rand.NewSource(sc.Seed + 1))
	var nodeSpecs = map[string]TraceSpec{}
	for name, ts := range sc.NodeLoad {
		nodeSpecs[name] = ts
	}
	edgeSpecs := map[string]TraceSpec{}
	for key, ts := range sc.EdgeLoad {
		edgeSpecs[key] = ts
	}
	for _, sl := range sc.Slowdowns {
		if sl.Node != "" {
			if _, dup := nodeSpecs[sl.Node]; dup {
				return nil, nil, fmt.Errorf("sim: node %s has both a trace and a slowdown", sl.Node)
			}
			nodeSpecs[sl.Node] = sl.spec()
		} else {
			if _, dup := edgeSpecs[sl.Edge]; dup {
				return nil, nil, fmt.Errorf("sim: edge %s has both a trace and a slowdown", sl.Edge)
			}
			edgeSpecs[sl.Edge] = sl.spec()
		}
	}
	// Materialize in sorted key order: the specs live in Go maps whose
	// iteration order is randomized, and random-walk traces draw from
	// one shared rng — unordered iteration would hand different walks
	// to different resources on every run, breaking the "same seed,
	// same scenario" contract.
	if len(nodeSpecs) > 0 {
		nodes = make([]*event.LoadTrace, p.NumNodes())
		for _, name := range sortedKeys(nodeSpecs) {
			i := p.NodeByName(name)
			if i < 0 {
				return nil, nil, fmt.Errorf("sim: node_load names unknown node %q", name)
			}
			if nodes[i], err = nodeSpecs[name].trace(rng); err != nil {
				return nil, nil, err
			}
		}
	}
	if len(edgeSpecs) > 0 {
		edges = make([]*event.LoadTrace, p.NumEdges())
		for _, key := range sortedKeys(edgeSpecs) {
			fromName, toName, err := splitEdgeKey(key)
			if err != nil {
				return nil, nil, err
			}
			from, to := p.NodeByName(fromName), p.NodeByName(toName)
			if from < 0 || to < 0 {
				return nil, nil, fmt.Errorf("sim: edge_load names unknown edge %q", key)
			}
			e := p.FindEdge(from, to)
			if e < 0 {
				return nil, nil, fmt.Errorf("sim: platform has no edge %q", key)
			}
			if edges[e], err = edgeSpecs[key].trace(rng); err != nil {
				return nil, nil, err
			}
		}
	}
	return nodes, edges, nil
}

// outages resolves the scenario's failure windows against a concrete
// platform into the event core's per-resource window lists.
func (sc *Scenario) outages(p *platform.Platform) (nodes, edges [][]event.Window, err error) {
	for _, f := range sc.Failures {
		w := event.Window{From: f.From, Until: f.Until}
		if f.Node != "" {
			i := p.NodeByName(f.Node)
			if i < 0 {
				return nil, nil, fmt.Errorf("sim: failure names unknown node %q", f.Node)
			}
			if nodes == nil {
				nodes = make([][]event.Window, p.NumNodes())
			}
			nodes[i] = append(nodes[i], w)
			continue
		}
		fromName, toName, err := splitEdgeKey(f.Edge)
		if err != nil {
			return nil, nil, err
		}
		from, to := p.NodeByName(fromName), p.NodeByName(toName)
		if from < 0 || to < 0 {
			return nil, nil, fmt.Errorf("sim: failure names unknown edge %q", f.Edge)
		}
		e := p.FindEdge(from, to)
		if e < 0 {
			return nil, nil, fmt.Errorf("sim: platform has no edge %q", f.Edge)
		}
		if edges == nil {
			edges = make([][]event.Window, p.NumEdges())
		}
		edges[e] = append(edges[e], w)
	}
	return nodes, edges, nil
}

func sortedKeys(m map[string]TraceSpec) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// quotaPolicy is the fixed-rate analogue of internal/adaptive's
// QuotaPolicy: among requesting children, serve the one furthest
// behind its steady-state rate under the solved LP.
type quotaPolicy struct {
	rate []float64
	tree []int
}

func (q *quotaPolicy) Pick(from int, pending []int, st *event.OnlineState) int {
	best, bestDef := 0, 0.0
	for i, child := range pending {
		e := q.tree[child]
		def := q.rate[e]*st.Now - float64(st.SentTo[e])
		if i == 0 || def > bestDef {
			best, bestDef = i, def
		}
	}
	return best
}

func (q *quotaPolicy) Name() string { return "lp-quota" }
