package sim_test

import (
	"context"
	"fmt"

	"repro/pkg/steady"
	"repro/pkg/steady/platform"
	"repro/pkg/steady/sim"
)

// ExampleEngine_Run solves the master-slave problem on the paper's
// Figure 1 platform and replays the reconstructed periodic schedule
// in exact simulated time: the achieved throughput approaches the
// certified LP optimum once the startup transient (bounded by the
// platform depth) has passed — §4.2's asymptotic optimality, observed
// rather than proved.
func ExampleEngine_Run() {
	solver, err := steady.New(steady.Spec{Problem: "masterslave", Root: "P1"})
	if err != nil {
		panic(err)
	}
	res, err := solver.Solve(context.Background(), platform.Figure1())
	if err != nil {
		panic(err)
	}

	eng := sim.New(sim.Config{})
	rep, err := eng.Run(context.Background(), res, sim.Scenario{Periods: 100})
	if err != nil {
		panic(err)
	}
	fmt.Println("certified  ", rep.Certified)
	fmt.Println("achieved   ", rep.Achieved)
	fmt.Println("steady from", rep.SteadyAfter)
	// Output:
	// certified   4/3
	// achieved    791/600
	// steady from 2
}

// ExampleEngine_Sweep fans a grid of (platform, solver, scenario)
// cells through the engine's worker pool. Cells sharing a platform
// and solver solve their LP once — the sweep rides the batch engine's
// sharded solution cache — and each outcome carries a full simulation
// report.
func ExampleEngine_Sweep() {
	fig1 := platform.Figure1()
	spec := steady.Spec{Problem: "masterslave", Root: "P1"}
	cells := []sim.Cell{
		{ID: "short", Platform: fig1, Spec: spec, Scenario: sim.Scenario{Periods: 10}},
		{ID: "long", Platform: fig1, Spec: spec, Scenario: sim.Scenario{Periods: 1000}},
		{ID: "slowdown", Platform: fig1, Spec: spec, Scenario: sim.Scenario{
			Tasks:     200,
			Slowdowns: []sim.Slowdown{{Node: "P2", Factor: 2, From: 0, Until: 50}},
		}},
	}

	eng := sim.New(sim.Config{Workers: 4})
	for _, o := range eng.Sweep(context.Background(), cells) {
		if o.Err != nil {
			panic(o.Err)
		}
		fmt.Printf("%-8s %-8s ratio %.3f\n", o.ID, o.Report.Kind, o.Report.RatioValue)
	}
	// Output:
	// short    periodic ratio 0.887
	// long     periodic ratio 0.999
	// slowdown online   ratio 0.980
}
