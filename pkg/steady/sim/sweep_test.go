package sim

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"

	"repro/pkg/steady"
	"repro/pkg/steady/batch"
	"repro/pkg/steady/platform"
)

// sweepCells builds a scenario grid over two platforms: every
// (platform, spec) pair appears under several scenarios, so the sweep
// exercises the shared LP-solution cache.
func sweepCells() []Cell {
	fig1 := platform.Figure1()
	st := star(3)
	ms := steady.Spec{Problem: "masterslave", Root: "P1"}
	msStar := steady.Spec{Problem: "masterslave", Root: "P0"}
	scenarios := []Scenario{
		{Name: "static"},
		{Name: "short", Periods: 64},
		{Name: "slow", Tasks: 120, Slowdowns: []Slowdown{{Node: "P2", Factor: 2, From: 5, Until: 40}}},
	}
	var cells []Cell
	for i, sc := range scenarios {
		cells = append(cells,
			Cell{ID: fmt.Sprintf("fig1-%d", i), Platform: fig1, Spec: ms, Scenario: sc},
			Cell{ID: fmt.Sprintf("star-%d", i), Platform: st, Spec: msStar, Scenario: sc},
		)
	}
	return cells
}

// TestSweepConcurrent drives the scenario sweep with many workers (run
// under -race in CI): outcomes arrive in cell order, none fail, and
// the LP solves once per distinct (platform, spec) pair.
func TestSweepConcurrent(t *testing.T) {
	eng := New(Config{Workers: 8})
	cells := sweepCells()
	outs := eng.Sweep(context.Background(), cells)
	if len(outs) != len(cells) {
		t.Fatalf("got %d outcomes for %d cells", len(outs), len(cells))
	}
	hits := 0
	for i, o := range outs {
		if o.ID != cells[i].ID {
			t.Errorf("outcome %d is %q, want %q (order lost)", i, o.ID, cells[i].ID)
		}
		if o.Err != nil {
			t.Errorf("cell %s: %v", o.ID, o.Err)
			continue
		}
		if o.Report == nil || o.Report.CertifiedValue <= 0 {
			t.Errorf("cell %s: empty report", o.ID)
		}
		if o.CacheHit {
			hits++
		}
	}
	// 6 cells over 2 distinct (platform, spec) pairs: at least 4 of
	// the solves must come from the shared cache.
	if hits < 4 {
		t.Errorf("cache hits = %d, want >= 4 (LP re-solved per scenario?)", hits)
	}
	if st := eng.batch.Stats(); st.Solves > 2 {
		t.Errorf("batch engine ran %d LP solves for 2 distinct pairs", st.Solves)
	}
}

func TestStreamSweepDeliversAll(t *testing.T) {
	eng := New(Config{Workers: 4})
	cells := sweepCells()
	var got atomic.Int64
	seen := make(chan string, len(cells))
	err := eng.StreamSweep(context.Background(), cells, func(o CellOutcome) error {
		got.Add(1)
		seen <- o.ID
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if int(got.Load()) != len(cells) {
		t.Fatalf("sink saw %d outcomes, want %d", got.Load(), len(cells))
	}
	close(seen)
	ids := map[string]bool{}
	for id := range seen {
		if ids[id] {
			t.Errorf("outcome %s delivered twice", id)
		}
		ids[id] = true
	}
}

func TestStreamSweepSinkErrorStops(t *testing.T) {
	eng := New(Config{Workers: 2})
	boom := errors.New("sink full")
	n := 0
	err := eng.StreamSweep(context.Background(), sweepCells(), func(o CellOutcome) error {
		n++
		if n >= 2 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want sink error", err)
	}
}

func TestSweepCancellation(t *testing.T) {
	eng := New(Config{Workers: 1})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	outs := eng.Sweep(ctx, sweepCells())
	for _, o := range outs {
		if o.Err == nil {
			t.Errorf("cell %s ran under a canceled context", o.ID)
		}
	}
}

func TestSweepBadCells(t *testing.T) {
	eng := New(Config{})
	outs := eng.Sweep(context.Background(), []Cell{
		{ID: "no-platform", Spec: steady.Spec{Problem: "masterslave"}},
		{ID: "bad-spec", Platform: platform.Figure1(), Spec: steady.Spec{Problem: "nope"}},
		{ID: "bad-scenario", Platform: platform.Figure1(),
			Spec: steady.Spec{Problem: "masterslave"}, Scenario: Scenario{Periods: -3}},
	})
	for _, o := range outs {
		if o.Err == nil {
			t.Errorf("cell %s unexpectedly succeeded", o.ID)
		}
	}
}

// TestSweepSharedCacheWithServerEngine verifies NewWithBatch shares
// LP solutions with an external batch engine.
func TestSweepSharedCacheWithServerEngine(t *testing.T) {
	shared := batch.New(2)
	solver, err := steady.New(steady.Spec{Problem: "masterslave", Root: "P1"})
	if err != nil {
		t.Fatal(err)
	}
	p := platform.Figure1()
	if outs := shared.Run(context.Background(), []batch.Job{{ID: "warm", Platform: p, Solver: solver}}); outs[0].Err != nil {
		t.Fatal(outs[0].Err)
	}
	eng := NewWithBatch(Config{}, shared)
	outs := eng.Sweep(context.Background(), []Cell{
		{ID: "c", Platform: p, Spec: steady.Spec{Problem: "masterslave", Root: "P1"}},
	})
	if outs[0].Err != nil {
		t.Fatal(outs[0].Err)
	}
	if !outs[0].CacheHit {
		t.Error("sweep did not reuse the shared engine's cached solve")
	}
}

func TestCellSinks(t *testing.T) {
	eng := New(Config{Workers: 2})
	cells := sweepCells()[:2]

	var jbuf strings.Builder
	if err := eng.StreamSweep(context.Background(), cells, JSONCellSink(&jbuf)); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(jbuf.String()), "\n")
	if len(lines) != len(cells) {
		t.Fatalf("JSON sink wrote %d lines, want %d", len(lines), len(cells))
	}
	var rec CellRecord
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatalf("bad JSON record: %v", err)
	}
	if rec.Report == nil || rec.Report.Certified == "" {
		t.Errorf("JSON record lost the report: %s", lines[0])
	}

	var cbuf strings.Builder
	if err := eng.StreamSweep(context.Background(), cells, CSVCellSink(&cbuf)); err != nil {
		t.Fatal(err)
	}
	csvLines := strings.Split(strings.TrimSpace(cbuf.String()), "\n")
	if len(csvLines) != len(cells)+1 {
		t.Fatalf("CSV sink wrote %d lines, want header + %d", len(csvLines), len(cells))
	}
	if !strings.HasPrefix(csvLines[0], "cell,solver,scenario,kind,certified") {
		t.Errorf("CSV header = %q", csvLines[0])
	}
}
