package event

import (
	"fmt"
	"math/big"

	"repro/pkg/steady/platform"
	"repro/pkg/steady/rat"
)

// Commodity is one independently-conserved flow (master-slave tasks,
// one scatter target type) or one replicated dissemination (one
// multicast tree) of a periodic replay. It mirrors
// steady.ReplayCommodity structurally; pkg/steady/sim converts
// between the two so this package stays a leaf.
type Commodity struct {
	// Name labels the commodity in reports and traces.
	Name string
	// Source is the node index holding an unbounded supply.
	Source int
	// Replicated marks dissemination semantics: sending does not
	// debit the sender (data is copied), and availability is bounded
	// by cumulative receptions. Flow commodities debit a buffer.
	Replicated bool
	// EdgeCount[e] is the integral number of units crossing platform
	// edge e each period (nil entries are treated as zero).
	EdgeCount []*big.Int
	// Consume[i] is the integral number of units node i consumes each
	// period; nil for delivery semantics.
	Consume []*big.Int
	// Sinks are the delivery targets; the commodity's completed count
	// is the minimum over sinks of cumulative arrivals. Empty for
	// consumption semantics.
	Sinks []int
	// Quota is the certified per-period completion count of this
	// commodity in steady state.
	Quota *big.Int
}

// PeriodicSpec is the input of the exact periodic replay: a platform
// and the commodities of one reconstructed steady-state period.
type PeriodicSpec struct {
	Platform    *platform.Platform
	Commodities []Commodity
}

// PeriodicOptions tunes one periodic replay run.
type PeriodicOptions struct {
	// PerPeriod materializes Stats.DonePerPeriod over the whole
	// horizon (extrapolated periods complete exactly the quota).
	PerPeriod bool
	// Loop, when non-nil, is the event loop to run on — attach a
	// Recorder to it for a structured trace. A fresh loop is created
	// when nil.
	Loop *Loop
	// Interrupt aborts the run with ErrInterrupted (polled every 64
	// periods).
	Interrupt <-chan struct{}
}

// PeriodicStats is the outcome of an exact periodic replay.
type PeriodicStats struct {
	// Periods is the reported horizon (includes extrapolation).
	Periods int64
	// SteadyAfter is the first period index of the final run
	// sustaining every quota (-1 if not reached within the horizon).
	SteadyAfter int64
	// Simulated is the number of periods executed event by event;
	// Periods - Simulated were extrapolated arithmetically after
	// steady state was confirmed (0 extrapolated when equal).
	Simulated int64
	// Ops is the total number of completed operations over the
	// horizon, summed across commodities.
	Ops *big.Int
	// Ratio is min over commodities of done / (periods * quota): the
	// fraction of the schedule's own steady-state rate achieved.
	Ratio rat.Rat
	// DonePerPeriod[p] is the total completion count of period p
	// (only with PeriodicOptions.PerPeriod).
	DonePerPeriod []*big.Int
}

// comState is the store-and-forward state of one commodity.
//
// Flow commodities track a per-node buffer: forwarding and consuming
// debit it, receptions credit it at the end of the period (so a unit
// received in period p is usable from period p+1 — the §4.2
// store-and-forward discipline). Replicated commodities track
// cumulative receptions per node and cumulative sends per edge:
// copies are free, so sending does not debit, but an edge can only
// have carried as many instances as its tail had received by the end
// of the previous period.
type comState struct {
	c *Commodity

	buffer  []*big.Int // flow: per-node buffered units
	arrived []*big.Int // replicated: cumulative receptions
	sent    []*big.Int // replicated: cumulative sends per edge

	done     *big.Int // cumulative completions
	lastDone *big.Int // completions in the most recent period
}

func newComState(p *platform.Platform, c *Commodity) *comState {
	st := &comState{c: c, done: new(big.Int), lastDone: new(big.Int)}
	if c.Replicated {
		st.arrived = zeros(p.NumNodes())
		st.sent = zeros(p.NumEdges())
	} else {
		st.buffer = zeros(p.NumNodes())
	}
	return st
}

func zeros(n int) []*big.Int {
	out := make([]*big.Int, n)
	for i := range out {
		out[i] = new(big.Int)
	}
	return out
}

func edgeLabel(p *platform.Platform, e int) string {
	ed := p.Edge(e)
	return p.Name(ed.From) + "->" + p.Name(ed.To)
}

// step advances the commodity by one period, records the period's
// completions in lastDone, and emits transfer/compute/deliver trace
// records on l when recording.
func (st *comState) step(p *platform.Platform, l *Loop) {
	c := st.c
	n := p.NumNodes()
	recv := zeros(n)
	doneThis := new(big.Int)
	rec := l.Recording()

	if c.Replicated {
		for e := 0; e < p.NumEdges(); e++ {
			want := c.EdgeCount[e]
			if want == nil || want.Sign() == 0 {
				continue
			}
			from := p.Edge(e).From
			x := new(big.Int).Set(want)
			if from != c.Source {
				// Cumulative sends may not exceed cumulative
				// receptions as of the end of the previous period.
				headroom := new(big.Int).Sub(st.arrived[from], st.sent[e])
				if headroom.Sign() < 0 {
					headroom.SetInt64(0)
				}
				if x.Cmp(headroom) > 0 {
					x.Set(headroom)
				}
			}
			st.sent[e].Add(st.sent[e], x)
			recv[p.Edge(e).To].Add(recv[p.Edge(e).To], x)
			if rec && x.Sign() > 0 {
				l.Emit(Record{Kind: "transfer", Edge: edgeLabel(p, e), Commodity: c.Name, Count: x.String()})
			}
		}
		for i := 0; i < n; i++ {
			st.arrived[i].Add(st.arrived[i], recv[i])
		}
		if rec {
			for _, s := range c.Sinks {
				if recv[s].Sign() > 0 {
					l.Emit(Record{Kind: "deliver", Node: p.Name(s), Commodity: c.Name, Count: recv[s].String()})
				}
			}
		}
		// Completed instances: delivered to every sink.
		min := minOver(st.arrived, c.Sinks)
		doneThis.Sub(min, st.done)
		st.done.Set(min)
		st.lastDone.Set(doneThis)
		return
	}

	// Flow semantics: forward first (fixed edge order), then consume;
	// any fixed priority reaches steady state within the platform
	// depth once upstream buffers fill.
	for i := 0; i < n; i++ {
		source := i == c.Source
		avail := new(big.Int).Set(st.buffer[i])
		for _, e := range p.OutEdges(i) {
			want := c.EdgeCount[e]
			if want == nil || want.Sign() == 0 {
				continue
			}
			x := new(big.Int).Set(want)
			if !source {
				if x.Cmp(avail) > 0 {
					x.Set(avail)
				}
				avail.Sub(avail, x)
			}
			recv[p.Edge(e).To].Add(recv[p.Edge(e).To], x)
			if rec && x.Sign() > 0 {
				l.Emit(Record{Kind: "transfer", Edge: edgeLabel(p, e), Commodity: c.Name, Count: x.String()})
			}
		}
		if c.Consume != nil {
			take := new(big.Int).Set(c.Consume[i])
			if !source {
				if take.Cmp(avail) > 0 {
					take.Set(avail)
				}
				avail.Sub(avail, take)
			}
			doneThis.Add(doneThis, take)
			if rec && take.Sign() > 0 {
				l.Emit(Record{Kind: "compute", Node: p.Name(i), Commodity: c.Name, Count: take.String()})
			}
		}
		if !source {
			st.buffer[i].Set(avail)
		}
	}
	for _, s := range c.Sinks {
		// Deliveries complete on arrival; the copy also lands in the
		// buffer below, in case the schedule routes through a sink.
		doneThis.Add(doneThis, recv[s])
		if rec && recv[s].Sign() > 0 {
			l.Emit(Record{Kind: "deliver", Node: p.Name(s), Commodity: c.Name, Count: recv[s].String()})
		}
	}
	for i := 0; i < n; i++ {
		if i != c.Source {
			st.buffer[i].Add(st.buffer[i], recv[i])
		}
	}
	st.done.Add(st.done, doneThis)
	st.lastDone.Set(doneThis)
}

func minOver(vals []*big.Int, idx []int) *big.Int {
	min := new(big.Int)
	for j, i := range idx {
		if j == 0 || vals[i].Cmp(min) < 0 {
			min.Set(vals[i])
		}
	}
	return min
}

// atQuota reports whether the most recent period completed the full
// per-period quota.
func (st *comState) atQuota() bool { return st.lastDone.Cmp(st.c.Quota) == 0 }

func newComStates(spec *PeriodicSpec) ([]*comState, error) {
	if len(spec.Commodities) == 0 {
		return nil, fmt.Errorf("event: replay has no commodities")
	}
	states := make([]*comState, len(spec.Commodities))
	for i := range spec.Commodities {
		c := &spec.Commodities[i]
		if c.Quota == nil || c.Quota.Sign() <= 0 {
			return nil, fmt.Errorf("event: commodity %s does no work", c.Name)
		}
		states[i] = newComState(spec.Platform, c)
	}
	return states, nil
}

// RunPeriodic executes the replay for the given horizon as a sequence
// of period events on the loop (period p runs at time p). It simulates
// period by period until every commodity sustains its quota for two
// consecutive periods, then extrapolates the remaining horizon
// arithmetically (in steady state each period adds exactly the
// quota), so long horizons are O(transient), not O(periods).
func RunPeriodic(spec *PeriodicSpec, periods int64, opts PeriodicOptions) (*PeriodicStats, error) {
	if periods <= 0 {
		return nil, fmt.Errorf("event: non-positive horizon")
	}
	states, err := newComStates(spec)
	if err != nil {
		return nil, err
	}
	l := opts.Loop
	if l == nil {
		l = NewLoop()
	}

	stats := &PeriodicStats{Periods: periods, SteadyAfter: -1}
	steadyRun := 0
	simulated := int64(0)
	var stepFn func()
	stepFn = func() {
		allQuota := true
		doneThis := new(big.Int)
		for _, st := range states {
			st.step(spec.Platform, l)
			doneThis.Add(doneThis, st.lastDone)
			if !st.atQuota() {
				allQuota = false
			}
		}
		if opts.PerPeriod {
			stats.DonePerPeriod = append(stats.DonePerPeriod, doneThis)
		}
		if l.Recording() {
			l.Emit(Record{Kind: "period", Count: doneThis.String()})
		}
		simulated++
		if allQuota {
			if stats.SteadyAfter < 0 {
				stats.SteadyAfter = simulated - 1
			}
			steadyRun++
			if l.Recording() {
				l.Emit(Record{Kind: "steady"})
			}
			if steadyRun >= 2 {
				return // steady confirmed: extrapolate the rest
			}
		} else {
			stats.SteadyAfter = -1
			steadyRun = 0
		}
		if simulated < periods {
			l.After(1, stepFn)
		}
	}
	l.At(0, stepFn)
	if err := l.Run(RunConfig{Interrupt: opts.Interrupt, CheckEvery: 64}); err != nil {
		return nil, err
	}

	// Extrapolate the remaining horizon: every steady period adds
	// exactly the quota.
	stats.Simulated = simulated
	remaining := periods - simulated
	stats.Ops = new(big.Int)
	pb := big.NewInt(periods)
	for i, st := range states {
		total := new(big.Int).Set(st.done)
		if remaining > 0 {
			total.Add(total, new(big.Int).Mul(st.c.Quota, big.NewInt(remaining)))
		}
		stats.Ops.Add(stats.Ops, total)
		r := bigRatio(total, new(big.Int).Mul(st.c.Quota, pb))
		if i == 0 || r.Less(stats.Ratio) {
			stats.Ratio = r
		}
	}
	if remaining > 0 {
		quotaSum := new(big.Int)
		for _, st := range states {
			quotaSum.Add(quotaSum, st.c.Quota)
		}
		if l.Recording() {
			added := new(big.Int).Mul(quotaSum, big.NewInt(remaining))
			l.Emit(Record{Kind: "extrapolate", Value: float64(remaining), Count: added.String()})
		}
		if opts.PerPeriod {
			for k := int64(0); k < remaining; k++ {
				stats.DonePerPeriod = append(stats.DonePerPeriod, quotaSum)
			}
		}
	}
	return stats, nil
}

// RunUntil executes the replay from cold buffers until at least n
// operations complete and returns the number of whole periods used
// (the §4.2 makespan measure: wall-clock makespan is periods * T).
// Once steady state is confirmed the remaining periods are computed
// arithmetically, which is exact because every steady period
// completes the full quota.
func RunUntil(spec *PeriodicSpec, n *big.Int, opts PeriodicOptions) (int64, error) {
	states, err := newComStates(spec)
	if err != nil {
		return 0, err
	}
	quotaSum := new(big.Int)
	depth := 0
	for _, st := range states {
		quotaSum.Add(quotaSum, st.c.Quota)
		if d := spec.Platform.MaxDepthFrom(st.c.Source); d > depth {
			depth = d
		}
	}
	if quotaSum.Sign() <= 0 {
		return 0, fmt.Errorf("event: schedule does no work")
	}
	l := opts.Loop
	if l == nil {
		l = NewLoop()
	}
	// Safety cap: steady state is reached after at most depth
	// periods, so n tasks need at most n/rate + depth + 1 periods.
	capPeriods := new(big.Int).Div(n, quotaSum).Int64() + int64(depth) + 2

	var (
		done      = new(big.Int)
		period    = int64(-1)
		steadyRun = 0
		finished  = int64(-1)
		capHit    bool
	)
	var stepFn func()
	stepFn = func() {
		period++
		allQuota := true
		doneThis := new(big.Int)
		for _, st := range states {
			st.step(spec.Platform, l)
			doneThis.Add(doneThis, st.lastDone)
			if !st.atQuota() {
				allQuota = false
			}
		}
		done.Add(done, doneThis)
		if l.Recording() {
			l.Emit(Record{Kind: "period", Count: doneThis.String()})
		}
		if done.Cmp(n) >= 0 {
			finished = period + 1
			return
		}
		if allQuota {
			steadyRun++
			if steadyRun >= 2 {
				// Extrapolate: k more steady periods finish the job.
				short := new(big.Int).Sub(n, done)
				k := short.Add(short, quotaSum)
				k.Sub(k, big.NewInt(1))
				k.Div(k, quotaSum)
				finished = period + 1 + k.Int64()
				if l.Recording() {
					l.Emit(Record{Kind: "extrapolate", Value: float64(k.Int64())})
				}
				return
			}
		} else {
			steadyRun = 0
		}
		if period+1 > capPeriods {
			capHit = true
			return
		}
		l.After(1, stepFn)
	}
	l.At(0, stepFn)
	if err := l.Run(RunConfig{Interrupt: opts.Interrupt, CheckEvery: 64}); err != nil {
		return 0, err
	}
	if capHit {
		return 0, fmt.Errorf("event: exceeded expected %d periods (ramp-up never completed)", capPeriods)
	}
	if finished < 0 {
		return 0, fmt.Errorf("event: replay stalled before completing %s operations", n)
	}
	return finished, nil
}

func bigRatio(a, b *big.Int) rat.Rat {
	return rat.FromBig(new(big.Rat).SetFrac(a, b))
}
