package event

import (
	"fmt"

	"repro/pkg/steady/platform"
)

// Policy decides, each time a node's send port becomes free, which
// pending child request to serve next. Implementations live in
// internal/baseline (the makespan-oriented heuristics the paper
// motivates against) and internal/adaptive (LP-guided quotas).
type Policy interface {
	// Pick returns the index into pending (a slice of child node ids
	// with outstanding requests at node `from`) to serve, or -1 to
	// keep the port idle.
	Pick(from int, pending []int, st *OnlineState) int
	// Name labels the policy in experiment output.
	Name() string
}

// OnlineState exposes read-only simulation state to policies.
type OnlineState struct {
	P *platform.Platform
	// Now is the current simulated time.
	Now float64
	// Buffer[i] is the number of task files buffered at node i.
	Buffer []int
	// Done[i] is the number of tasks node i has completed.
	Done []int
	// SentTo[e] counts task files sent over edge e so far.
	SentTo []int
}

// Window is one outage window: the resource is fully offline during
// [From, Until) — no compute or transfer may start on it, though
// operations already in flight complete (the failure takes effect at
// the next scheduling decision, like a drained host).
type Window struct {
	From  float64 `json:"from"`
	Until float64 `json:"until"`
}

// downUntil reports whether t falls inside one of the windows, and
// until when.
func downUntil(ws []Window, t float64) (float64, bool) {
	for _, w := range ws {
		if t >= w.From && t < w.Until {
			return w.Until, true
		}
	}
	return 0, false
}

// OnlineConfig configures an online master-slave run.
type OnlineConfig struct {
	Platform *platform.Platform
	// Tree maps each non-master node to the platform edge from its
	// parent (a spanning in-tree rooted at the master). Baselines run
	// on tree overlays, matching the ENV view of §5.3.
	Tree []int
	// Master is the root holding all tasks.
	Master int
	// Tasks is the number of tasks to process (0 = run to Horizon).
	Tasks int
	// Horizon stops the simulation at this time (0 = until Tasks done).
	Horizon float64
	// Policy picks the next request to serve.
	Policy Policy
	// NodeLoad and EdgeLoad optionally slow resources over time
	// (nil entries = constant 1).
	NodeLoad []*LoadTrace
	EdgeLoad []*LoadTrace
	// Arrivals, when non-nil, replaces the master's unbounded initial
	// supply with a workload arrival process: one task becomes
	// available at each listed time (ascending). With Arrivals set and
	// neither Tasks nor Horizon, the run processes exactly the arrived
	// tasks.
	Arrivals []float64
	// NodeDown[i] / EdgeDown[e] are per-resource outage windows
	// (link failures, node churn). Nil slices mean always up.
	NodeDown [][]Window
	EdgeDown [][]Window
	// RequestThreshold: a child re-requests work whenever its buffer
	// falls below this many tasks (default 2, the classic
	// double-buffering of demand-driven master-slave).
	RequestThreshold int
	// Interrupt, when non-nil, aborts the simulation with
	// ErrInterrupted once it becomes receivable (typically a
	// context's Done channel). Checked every few hundred events, so
	// a long run stops promptly without per-event overhead.
	Interrupt <-chan struct{}
	// EpochLength, if > 0, invokes OnEpoch every EpochLength time
	// units with per-resource observed performance (for §5.5
	// adaptive re-planning).
	EpochLength float64
	OnEpoch     func(now float64, obs *EpochObservation)
	// Loop, when non-nil, is the event loop to run on — callers
	// attach a trace Recorder to it, and callbacks (OnEpoch, Policy)
	// may Emit supplementary records through it. A fresh loop is
	// created when nil. Each run needs its own loop.
	Loop *Loop
}

// EpochObservation reports measured resource performance during the
// last epoch: the adaptive scheduler's NWS-like sensor input.
type EpochObservation struct {
	// NodeBusy[i] is the fraction of the epoch node i spent computing.
	NodeBusy []float64
	// NodeRate[i] is tasks completed per time unit at node i.
	NodeRate []float64
	// EdgeRate[e] is task files per time unit carried by edge e.
	EdgeRate []float64
	// EffectiveW[i] is the observed seconds per task while busy
	// (w_i * average multiplier); 0 when no task completed.
	EffectiveW []float64
	// EffectiveC[e] is the observed seconds per file while busy.
	EffectiveC []float64
}

// OnlineResult reports an online run.
type OnlineResult struct {
	Makespan float64
	Done     int
	PerNode  []int
	PerEdge  []int
	// Arrived is the number of tasks released by the arrival process
	// (0 when the master's supply is unbounded).
	Arrived int
}

// RunOnlineMasterSlave simulates demand-driven master-slave tasking
// on a tree overlay under the one-port model: every node computes
// continuously from its buffer, children request work when low, and
// each node's send port serves one request at a time in policy order.
// All events run on a single deterministic Loop; attach a Recorder to
// cfg.Loop for a structured trace of the run.
func RunOnlineMasterSlave(cfg OnlineConfig) (*OnlineResult, error) {
	p := cfg.Platform
	n := p.NumNodes()
	if cfg.Master < 0 || cfg.Master >= n {
		return nil, fmt.Errorf("event: bad master")
	}
	if len(cfg.Tree) != n {
		return nil, fmt.Errorf("event: tree must have one entry per node")
	}
	if cfg.Arrivals != nil && cfg.Tasks <= 0 && cfg.Horizon <= 0 {
		cfg.Tasks = len(cfg.Arrivals)
	}
	if cfg.Tasks <= 0 && cfg.Horizon <= 0 {
		return nil, fmt.Errorf("event: need Tasks or Horizon")
	}
	if cfg.NodeDown != nil && len(cfg.NodeDown) != n {
		return nil, fmt.Errorf("event: NodeDown must have one entry per node")
	}
	if cfg.EdgeDown != nil && len(cfg.EdgeDown) != p.NumEdges() {
		return nil, fmt.Errorf("event: EdgeDown must have one entry per edge")
	}
	threshold := cfg.RequestThreshold
	if threshold <= 0 {
		threshold = 2
	}
	l := cfg.Loop
	if l == nil {
		l = NewLoop()
	}

	children := make([][]int, n) // node -> child node ids
	parentEdge := cfg.Tree
	for v := 0; v < n; v++ {
		if v == cfg.Master {
			continue
		}
		e := parentEdge[v]
		if e < 0 || e >= p.NumEdges() || p.Edge(e).To != v {
			return nil, fmt.Errorf("event: tree edge %d does not enter node %d", e, v)
		}
		children[p.Edge(e).From] = append(children[p.Edge(e).From], v)
	}

	edgeName := func(e int) string {
		ed := p.Edge(e)
		return p.Name(ed.From) + "->" + p.Name(ed.To)
	}

	st := &OnlineState{
		P:      p,
		Buffer: make([]int, n),
		Done:   make([]int, n),
		SentTo: make([]int, p.NumEdges()),
	}
	var (
		remaining  = cfg.Tasks // tasks left to hand out at the master
		masterPool int         // arrived-but-unclaimed tasks (Arrivals mode)
		arrived    int
		doneTotal  int
		computing  = make([]bool, n)
		sending    = make([]bool, n)
		pending    = make([][]int, n) // node -> child ids waiting
		requested  = make([]bool, n)  // child has an outstanding request
		busyCpu    = make([]float64, n)
		busyEdge   = make([]float64, p.NumEdges())
		epochDone  = make([]int, n)
		epochSent  = make([]int, p.NumEdges())
	)

	nodeLoad := func(i int) *LoadTrace {
		if cfg.NodeLoad == nil {
			return nil
		}
		return cfg.NodeLoad[i]
	}
	edgeLoad := func(e int) *LoadTrace {
		if cfg.EdgeLoad == nil {
			return nil
		}
		return cfg.EdgeLoad[e]
	}
	nodeUp := func(i int) bool {
		if cfg.NodeDown == nil {
			return true
		}
		_, down := downUntil(cfg.NodeDown[i], l.Now())
		return !down
	}
	edgeUp := func(e int) bool {
		if cfg.EdgeDown == nil {
			return true
		}
		_, down := downUntil(cfg.EdgeDown[e], l.Now())
		return !down
	}

	var tryCompute func(i int)
	var trySend func(i int)
	var request func(child int)

	// takeTask withdraws one task at node i (master draws from the
	// arrival pool, the bounded initial collection, or an unbounded
	// supply, in that order of configuration).
	takeTask := func(i int) bool {
		if i == cfg.Master {
			if cfg.Arrivals != nil {
				if masterPool == 0 {
					return false
				}
				masterPool--
				return true
			}
			if cfg.Tasks > 0 {
				if remaining == 0 {
					return false
				}
				remaining--
				return true
			}
			return true
		}
		if st.Buffer[i] == 0 {
			return false
		}
		st.Buffer[i]--
		return true
	}

	tryCompute = func(i int) {
		if computing[i] || !p.CanCompute(i) || !nodeUp(i) {
			return
		}
		if !takeTask(i) {
			return
		}
		computing[i] = true
		now := l.Now()
		dur := p.Weight(i).Val.Float64() * nodeLoad(i).At(now)
		if l.Recording() {
			l.Emit(Record{Kind: "compute-start", Node: p.Name(i), Value: dur})
		}
		l.At(now+dur, func() {
			st.Now = l.Now()
			computing[i] = false
			st.Done[i]++
			epochDone[i]++
			doneTotal++
			busyCpu[i] += l.Now() - now
			if l.Recording() {
				l.Emit(Record{Kind: "compute-end", Node: p.Name(i), Task: int64(st.Done[i])})
			}
			tryCompute(i)
			request(i)
		})
	}

	request = func(child int) {
		if child == cfg.Master || requested[child] {
			return
		}
		if st.Buffer[child] >= threshold {
			return
		}
		parent := p.Edge(parentEdge[child]).From
		requested[child] = true
		pending[parent] = append(pending[parent], child)
		if l.Recording() {
			l.Emit(Record{Kind: "request", Node: p.Name(child)})
		}
		trySend(parent)
	}

	trySend = func(i int) {
		if sending[i] || len(pending[i]) == 0 || !nodeUp(i) {
			return
		}
		st.Now = l.Now()
		// Failed links are invisible to the policy: it only chooses
		// among children whose parent edge is currently up.
		cands := pending[i]
		var pos []int // cands index -> pending[i] index
		if cfg.EdgeDown != nil {
			cands = nil
			for j, child := range pending[i] {
				if edgeUp(parentEdge[child]) {
					cands = append(cands, child)
					pos = append(pos, j)
				}
			}
			if len(cands) == 0 {
				return
			}
		}
		pick := cfg.Policy.Pick(i, cands, st)
		if pick < 0 || pick >= len(cands) {
			return
		}
		if pos != nil {
			pick = pos[pick]
		}
		child := pending[i][pick]
		if !takeTask(i) {
			// No task to forward right now: keep the request pending;
			// trySend fires again when a task arrives at this node.
			return
		}
		pending[i] = append(pending[i][:pick:pick], pending[i][pick+1:]...)
		e := parentEdge[child]
		sending[i] = true
		now := l.Now()
		dur := p.Edge(e).C.Float64() * edgeLoad(e).At(now)
		if l.Recording() {
			l.Emit(Record{Kind: "send-start", Edge: edgeName(e), Value: dur})
		}
		l.At(now+dur, func() {
			st.Now = l.Now()
			sending[i] = false
			busyEdge[e] += l.Now() - now
			st.SentTo[e]++
			epochSent[e]++
			st.Buffer[child]++
			requested[child] = false
			if l.Recording() {
				l.Emit(Record{Kind: "send-end", Edge: edgeName(e), Task: int64(st.SentTo[e])})
			}
			tryCompute(child)
			trySend(child)
			request(child) // re-request if still below threshold
			trySend(i)
		})
	}

	// Epoch ticks.
	if cfg.EpochLength > 0 && cfg.OnEpoch != nil {
		var tick func()
		tick = func() {
			st.Now = l.Now()
			obs := &EpochObservation{
				NodeBusy:   make([]float64, n),
				NodeRate:   make([]float64, n),
				EdgeRate:   make([]float64, p.NumEdges()),
				EffectiveW: make([]float64, n),
				EffectiveC: make([]float64, p.NumEdges()),
			}
			for i := 0; i < n; i++ {
				obs.NodeBusy[i] = busyCpu[i] / cfg.EpochLength
				obs.NodeRate[i] = float64(epochDone[i]) / cfg.EpochLength
				if epochDone[i] > 0 {
					obs.EffectiveW[i] = busyCpu[i] / float64(epochDone[i])
				}
				busyCpu[i] = 0
				epochDone[i] = 0
			}
			for e := 0; e < p.NumEdges(); e++ {
				obs.EdgeRate[e] = float64(epochSent[e]) / cfg.EpochLength
				if epochSent[e] > 0 {
					obs.EffectiveC[e] = busyEdge[e] / float64(epochSent[e])
				}
				busyEdge[e] = 0
				epochSent[e] = 0
			}
			if l.Recording() {
				l.Emit(Record{Kind: "epoch", Value: cfg.EpochLength})
			}
			cfg.OnEpoch(l.Now(), obs)
			l.After(cfg.EpochLength, tick)
		}
		l.At(cfg.EpochLength, tick)
	}

	// Arrival process: one event per task release.
	for _, t := range cfg.Arrivals {
		l.At(t, func() {
			st.Now = l.Now()
			masterPool++
			arrived++
			if l.Recording() {
				l.Emit(Record{Kind: "arrival", Node: p.Name(cfg.Master), Task: int64(arrived)})
			}
			tryCompute(cfg.Master)
			trySend(cfg.Master)
		})
	}

	// Failure windows: trace their boundaries and retry stalled work
	// the instant a window closes.
	if cfg.NodeDown != nil {
		for i := range cfg.NodeDown {
			i := i
			for _, w := range cfg.NodeDown[i] {
				l.At(w.From, func() { l.Emit(Record{Kind: "down", Node: p.Name(i)}) })
				l.At(w.Until, func() {
					st.Now = l.Now()
					l.Emit(Record{Kind: "up", Node: p.Name(i)})
					tryCompute(i)
					trySend(i)
				})
			}
		}
	}
	if cfg.EdgeDown != nil {
		for e := range cfg.EdgeDown {
			e := e
			from := p.Edge(e).From
			for _, w := range cfg.EdgeDown[e] {
				l.At(w.From, func() { l.Emit(Record{Kind: "down", Edge: edgeName(e)}) })
				l.At(w.Until, func() {
					st.Now = l.Now()
					l.Emit(Record{Kind: "up", Edge: edgeName(e)})
					trySend(from)
				})
			}
		}
	}

	// Boot: master computes; every leaf-to-root chain starts
	// requesting.
	tryCompute(cfg.Master)
	for v := 0; v < n; v++ {
		if v != cfg.Master {
			request(v)
		}
	}

	err := l.Run(RunConfig{
		Horizon:   cfg.Horizon,
		Interrupt: cfg.Interrupt,
		Stop: func() bool {
			return cfg.Tasks > 0 && doneTotal >= cfg.Tasks
		},
	})
	if err != nil {
		return nil, err
	}

	return &OnlineResult{
		Makespan: l.Now(),
		Done:     doneTotal,
		PerNode:  append([]int(nil), st.Done...),
		PerEdge:  append([]int(nil), st.SentTo...),
		Arrived:  arrived,
	}, nil
}

// ShortestPathTree returns, for each node, the entering edge of a
// shortest-path spanning tree rooted at master (-1 for the master
// itself), the overlay on which online policies run.
func ShortestPathTree(p *platform.Platform, master int) ([]int, error) {
	tree := make([]int, p.NumNodes())
	for v := range tree {
		tree[v] = -1
	}
	for v := 0; v < p.NumNodes(); v++ {
		if v == master {
			continue
		}
		path := p.ShortestPath(master, v)
		if path == nil {
			return nil, fmt.Errorf("event: node %d unreachable from master", v)
		}
		tree[v] = path[len(path)-1]
	}
	return tree, nil
}
