// Package event is the deterministic discrete-event core shared by
// every simulator in the repository: the exact big.Int periodic
// replay of reconstructed steady-state schedules (periodic.go) and
// the float64 online one-port simulator of §5.5 (online.go) both
// schedule their work as events on one Loop.
//
// Determinism is the package contract, enforced by construction:
//
//   - events execute in strict (time, sequence) order, where the
//     sequence number is assigned at scheduling time — simultaneous
//     events run in the order they were scheduled, never in map or
//     heap-internal order;
//   - no wall clock is consulted anywhere; simulated time only
//     advances to the timestamp of the next event;
//   - all randomness is injected explicitly as seeded *rand.Rand
//     streams (load traces, arrival processes); the loop itself draws
//     no random numbers.
//
// Two runs of the same configuration therefore produce byte-identical
// results and byte-identical structured event traces (trace.go), which
// is what makes simulation output testable as data: golden traces are
// checked in under pkg/steady/sim/testdata and any semantic drift in
// the event loop shows up as a trace diff.
package event

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
)

// ErrInterrupted reports that a run was aborted through
// RunConfig.Interrupt (typically a context's Done channel) before
// completing.
var ErrInterrupted = errors.New("event: interrupted")

// item is one scheduled callback, ordered by (t, seq).
type item struct {
	t   float64
	seq int64
	fn  func()
}

type itemHeap []*item

func (h itemHeap) Len() int { return len(h) }
func (h itemHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h itemHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *itemHeap) Push(x interface{}) { *h = append(*h, x.(*item)) }
func (h *itemHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Loop is a deterministic discrete-event loop. The zero value is not
// usable; construct with NewLoop. A Loop is single-goroutine: events
// are executed synchronously inside Run, and all scheduling happens
// either before Run or from within event callbacks.
type Loop struct {
	h      itemHeap
	seq    int64
	now    float64
	rec    Recorder
	recSeq int64

	// processed and maxHeap are observation-only tallies (events
	// executed, deepest pending-event heap seen). They are read by the
	// simulation engine's metrics after a run and never influence
	// scheduling — determinism does not depend on them.
	processed int64
	maxHeap   int
}

// NewLoop returns an empty loop at time zero.
func NewLoop() *Loop { return &Loop{} }

// SetRecorder attaches a structured-trace recorder; nil detaches it.
func (l *Loop) SetRecorder(r Recorder) { l.rec = r }

// Recording reports whether a recorder is attached, so event sources
// can skip building Records nobody will see.
func (l *Loop) Recording() bool { return l.rec != nil }

// Now returns the current simulated time.
func (l *Loop) Now() float64 { return l.now }

// Events returns the number of trace records emitted so far.
func (l *Loop) Events() int64 { return l.recSeq }

// Processed returns the number of events executed so far, across all
// Run calls on this loop.
func (l *Loop) Processed() int64 { return l.processed }

// MaxHeap returns the deepest pending-event heap observed so far — a
// high-water mark for the loop's working set.
func (l *Loop) MaxHeap() int { return l.maxHeap }

// At schedules fn at absolute time t. Times before Now clamp to Now,
// so a callback may safely schedule follow-up work "immediately".
func (l *Loop) At(t float64, fn func()) {
	if t < l.now {
		t = l.now
	}
	l.seq++
	heap.Push(&l.h, &item{t: t, seq: l.seq, fn: fn})
	if len(l.h) > l.maxHeap {
		l.maxHeap = len(l.h)
	}
}

// After schedules fn d time units from Now.
func (l *Loop) After(d float64, fn func()) { l.At(l.now+d, fn) }

// Emit stamps the record with the current time and the next trace
// sequence number and hands it to the recorder. It is a no-op without
// a recorder, but callers on hot paths should guard with Recording()
// to avoid building the Record at all.
func (l *Loop) Emit(r Record) {
	if l.rec == nil {
		return
	}
	r.Seq = l.recSeq
	r.T = l.now
	l.recSeq++
	l.rec.Record(r)
}

// RunConfig bounds one Run of the loop.
type RunConfig struct {
	// Horizon, when positive, stops the run before executing any
	// event scheduled strictly after it and clamps Now to the horizon
	// (the §5.5 "simulate for H time units" mode).
	Horizon float64
	// Stop, when non-nil, is evaluated after every executed event; a
	// true return ends the run (the "N tasks done" mode).
	Stop func() bool
	// Interrupt, when non-nil, aborts the run with ErrInterrupted
	// once it becomes receivable. It is polled every CheckEvery
	// events, so long runs stop promptly without per-event overhead.
	Interrupt <-chan struct{}
	// CheckEvery is the interrupt polling stride; 0 means 256.
	CheckEvery int
}

// Run executes events in (time, sequence) order until the queue
// drains, the horizon is passed, Stop returns true, or Interrupt
// fires. It may be called again to resume after a Stop or horizon
// end; pending events stay queued.
func (l *Loop) Run(rc RunConfig) error {
	check := rc.CheckEvery
	if check <= 0 {
		check = 256
	}
	processed := 0
	for len(l.h) > 0 {
		if rc.Interrupt != nil && processed%check == 0 {
			select {
			case <-rc.Interrupt:
				return ErrInterrupted
			default:
			}
		}
		processed++
		ev := heap.Pop(&l.h).(*item)
		if rc.Horizon > 0 && ev.t > rc.Horizon {
			l.now = rc.Horizon
			return nil
		}
		l.now = ev.t
		ev.fn()
		l.processed++
		if rc.Stop != nil && rc.Stop() {
			return nil
		}
		if math.IsInf(l.now, 0) {
			return fmt.Errorf("event: time diverged")
		}
	}
	return nil
}
