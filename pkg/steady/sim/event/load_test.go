package event_test

import (
	"math/rand"
	"testing"

	"repro/pkg/steady/sim/event"
)

// The simulation engines query load traces at arbitrary times,
// including before the first knot, past the horizon, and on traces
// that never received a breakpoint; these tests pin the boundary
// behavior they rely on.

func TestLoadTraces(t *testing.T) {
	tr := event.StepLoad([]float64{0, 10, 20}, []float64{1, 2, 4})
	if tr.At(0) != 1 || tr.At(5) != 1 || tr.At(10) != 2 || tr.At(15) != 2 || tr.At(25) != 4 {
		t.Fatal("StepLoad.At wrong")
	}
	if m := tr.Mean(20); m != 1.5 {
		t.Fatalf("Mean = %v, want 1.5", m)
	}
	if event.ConstantLoad(3).At(1e9) != 3 {
		t.Fatal("constant trace wrong")
	}
	var nilTrace *event.LoadTrace
	if nilTrace.At(5) != 1 || nilTrace.Mean(5) != 1 {
		t.Fatal("nil trace must be identity")
	}
	rw := event.RandomWalkLoad(rand.New(rand.NewSource(2)), 100, 5, 1, 3)
	for _, tm := range []float64{0, 17, 50, 99} {
		if v := rw.At(tm); v < 1 || v > 3 {
			t.Fatalf("random walk out of range at %v: %v", tm, v)
		}
	}
}

func TestLoadTracePanics(t *testing.T) {
	for _, f := range []func(){
		func() { event.StepLoad([]float64{1}, []float64{1}) },
		func() { event.StepLoad([]float64{0, 0}, []float64{1, 2}) },
		func() { event.StepLoad([]float64{0}, []float64{1, 2}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestLoadTraceAtBoundaries(t *testing.T) {
	tr := event.StepLoad([]float64{0, 10, 20}, []float64{1, 2, 4})
	cases := []struct {
		t    float64
		want float64
	}{
		{-5, 1},  // before the first knot: clamp to the first segment
		{0, 1},   // exactly the first knot
		{5, 1},   // inside the first segment
		{10, 2},  // exactly a breakpoint: the new segment applies
		{15, 2},  // inside a middle segment
		{20, 4},  // last breakpoint
		{1e9, 4}, // far past the horizon: the last multiplier holds
	}
	for _, c := range cases {
		if got := tr.At(c.t); got != c.want {
			t.Errorf("At(%v) = %v, want %v", c.t, got, c.want)
		}
	}
}

func TestLoadTraceEmptyAndNil(t *testing.T) {
	var nilTrace *event.LoadTrace
	empty := &event.LoadTrace{}
	for _, tr := range []*event.LoadTrace{nilTrace, empty} {
		if got := tr.At(-1); got != 1 {
			t.Errorf("At(-1) on empty/nil trace = %v, want 1", got)
		}
		if got := tr.At(42); got != 1 {
			t.Errorf("At(42) on empty/nil trace = %v, want 1", got)
		}
		if got := tr.Mean(10); got != 1 {
			t.Errorf("Mean(10) on empty/nil trace = %v, want 1", got)
		}
	}
	// RandomWalkLoad with a degenerate horizon produces an empty
	// trace; it must behave as the identity rather than panic.
	rw := event.RandomWalkLoad(rand.New(rand.NewSource(1)), 0, 10, 1, 2)
	if got := rw.At(3); got != 1 {
		t.Errorf("degenerate random walk At(3) = %v, want 1", got)
	}
}

func TestLoadTraceMeanBoundaries(t *testing.T) {
	tr := event.StepLoad([]float64{0, 10}, []float64{1, 3})
	if got := tr.Mean(20); got != 2 {
		t.Errorf("Mean(20) = %v, want 2", got)
	}
	// Horizon inside the first segment.
	if got := tr.Mean(10); got != 1 {
		t.Errorf("Mean(10) = %v, want 1", got)
	}
	// Non-positive horizon degenerates to the instantaneous value.
	if got := tr.Mean(0); got != 1 {
		t.Errorf("Mean(0) = %v, want 1", got)
	}
	if got := tr.Mean(-1); got != 1 {
		t.Errorf("Mean(-1) = %v, want 1", got)
	}
	// Constant traces are flat everywhere.
	ct := event.ConstantLoad(2.5)
	if got := ct.Mean(7); got != 2.5 {
		t.Errorf("constant Mean(7) = %v, want 2.5", got)
	}
}

func TestLoadTraceMeanPastLastKnot(t *testing.T) {
	// Mean over a horizon far past the last knot weights the final
	// multiplier by the remaining time.
	tr := event.StepLoad([]float64{0, 10}, []float64{2, 4})
	// [0,10): 2, [10,40): 4 -> (10*2 + 30*4) / 40 = 140/40 = 3.5
	if got := tr.Mean(40); got != 3.5 {
		t.Errorf("Mean(40) = %v, want 3.5", got)
	}
}
