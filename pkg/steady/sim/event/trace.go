package event

import (
	"encoding/json"
	"io"
)

// Record is one structured trace event. The field set is the union of
// what the two simulation substrates report; unused fields are
// omitted from the JSON encoding, and the fixed field order plus
// Go's deterministic float/JSON formatting make the encoded form
// byte-stable: the same run always serializes to the same bytes.
//
// Kinds emitted by the exact periodic replay (integral counts travel
// in Count as decimal strings, exact at any magnitude):
//
//	transfer   units moved over Edge for Commodity this period
//	compute    units consumed at Node for Commodity this period
//	deliver    units delivered to sink Node for Commodity this period
//	period     per-period summary (Count = completions this period)
//	steady     every commodity sustained its quota this period
//	extrapolate remaining horizon extrapolated arithmetically
//	            (Value = periods, Count = completions added)
//
// Kinds emitted by the online one-port simulator (float dynamics):
//
//	arrival        a task became available at the master (Task =
//	               cumulative arrivals)
//	request        Node asked its parent for work
//	send-start     a task file started crossing Edge (Value = duration)
//	send-end       it arrived (Task = cumulative files over Edge)
//	compute-start  Node started a task (Value = duration)
//	compute-end    Node finished one (Task = its cumulative count)
//	down, up       a failure window opened/closed on Node or Edge
//	epoch          an observation epoch ended (Value = epoch length)
//	resolve        an adaptive re-solve decision (emitted by the
//	               controller wiring; Note = warm|cold, Task = pivots,
//	               Value = new certified throughput)
type Record struct {
	// Seq is the trace sequence number, dense from 0 per run.
	Seq int64 `json:"seq"`
	// T is the simulated time of the event (the period index for the
	// exact replay).
	T float64 `json:"t"`
	// Kind discriminates the event, see above.
	Kind string `json:"kind"`
	// Node and Edge name the resource involved ("P2", "P1->P2").
	Node string `json:"node,omitempty"`
	Edge string `json:"edge,omitempty"`
	// Commodity labels the flow/dissemination in periodic replays.
	Commodity string `json:"commodity,omitempty"`
	// Count carries exact integral counts as decimal strings.
	Count string `json:"count,omitempty"`
	// Task carries small integral counts of the online simulator.
	Task int64 `json:"task,omitempty"`
	// Value carries float quantities (durations, rates, lengths).
	Value float64 `json:"value,omitempty"`
	// Note carries free-form qualifiers ("warm", "cold").
	Note string `json:"note,omitempty"`
}

// Recorder receives trace records in emission order. Implementations
// need not be safe for concurrent use: a Loop emits from a single
// goroutine.
type Recorder interface {
	Record(Record)
}

// WriterRecorder streams records as JSON lines (one object per line)
// to an io.Writer — the on-disk/golden/wire format of event traces.
type WriterRecorder struct {
	enc *json.Encoder
	n   int64
	err error
}

// NewWriterRecorder returns a recorder encoding to w.
func NewWriterRecorder(w io.Writer) *WriterRecorder {
	return &WriterRecorder{enc: json.NewEncoder(w)}
}

// Record implements Recorder. After the first write error the
// recorder goes silent; check Err at the end of the run.
func (r *WriterRecorder) Record(rec Record) {
	if r.err != nil {
		return
	}
	if err := r.enc.Encode(rec); err != nil {
		r.err = err
		return
	}
	r.n++
}

// Count returns the number of records written.
func (r *WriterRecorder) Count() int64 { return r.n }

// Err returns the first write error, if any.
func (r *WriterRecorder) Err() error { return r.err }

// MemoryRecorder collects records in memory, keeping at most Limit
// (0 = unlimited) and counting the overflow — the bounded form served
// over HTTP by pkg/steady/server.
type MemoryRecorder struct {
	// Limit caps len(Records); further records only bump Dropped.
	Limit int
	// Records are the collected events in emission order.
	Records []Record
	// Dropped counts records discarded after Limit was reached.
	Dropped int64
}

// Record implements Recorder.
func (m *MemoryRecorder) Record(rec Record) {
	if m.Limit > 0 && len(m.Records) >= m.Limit {
		m.Dropped++
		return
	}
	m.Records = append(m.Records, rec)
}
