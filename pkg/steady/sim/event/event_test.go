package event_test

import (
	"math"
	"math/big"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/schedule"
	"repro/pkg/steady/platform"
	"repro/pkg/steady/rat"
	"repro/pkg/steady/sim/event"
)

func mustPeriodic(t *testing.T, p *platform.Platform, master int) *schedule.Periodic {
	t.Helper()
	ms, err := core.SolveMasterSlave(p, master)
	if err != nil {
		t.Fatal(err)
	}
	per, err := schedule.Reconstruct(ms)
	if err != nil {
		t.Fatal(err)
	}
	return per
}

func mustSpec(t *testing.T, per *schedule.Periodic) *event.PeriodicSpec {
	t.Helper()
	spec, err := per.EventSpec()
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

func TestPeriodicSimReachesSteadyState(t *testing.T) {
	p := platform.Figure1()
	master := p.NodeByName("P1")
	per := mustPeriodic(t, p, master)
	stats, err := event.RunPeriodic(mustSpec(t, per), 30, event.PeriodicOptions{PerPeriod: true})
	if err != nil {
		t.Fatal(err)
	}
	depth := int64(p.MaxDepthFrom(master))
	if stats.SteadyAfter < 0 {
		t.Fatal("steady state never reached")
	}
	if stats.SteadyAfter > depth {
		t.Fatalf("steady state after %d periods, want <= depth %d (§4.2)", stats.SteadyAfter, depth)
	}
	// After steady state every period completes exactly TasksPerPeriod.
	for pd := stats.SteadyAfter; pd < 30; pd++ {
		if stats.DonePerPeriod[pd].Cmp(per.TasksPerPeriod) != 0 {
			t.Fatalf("period %d did %v tasks, want %v", pd, stats.DonePerPeriod[pd], per.TasksPerPeriod)
		}
	}
	// Cold start can never beat the steady-state bound.
	bound := new(big.Int).Mul(per.TasksPerPeriod, big.NewInt(30))
	if stats.Ops.Cmp(bound) > 0 {
		t.Fatalf("simulation %v beats the steady-state bound %v", stats.Ops, bound)
	}
}

func TestPeriodicSimRandomPlatforms(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 8; trial++ {
		p := platform.RandomConnected(rng, 4+rng.Intn(4), rng.Intn(5), 4, 4, 0.1)
		per := mustPeriodic(t, p, 0)
		stats, err := event.RunPeriodic(mustSpec(t, per), 25, event.PeriodicOptions{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if stats.SteadyAfter < 0 || stats.SteadyAfter > int64(p.NumNodes()) {
			t.Fatalf("trial %d: steady after %d periods (p=%d nodes)",
				trial, stats.SteadyAfter, p.NumNodes())
		}
	}
}

// TestAsymptoticOptimality is the §4.2 theorem in executable form:
// makespan(n)/LB(n) -> 1 and the absolute loss (in periods) is a
// constant independent of n.
func TestAsymptoticOptimality(t *testing.T) {
	p := platform.Figure1()
	master := p.NodeByName("P1")
	per := mustPeriodic(t, p, master)
	spec := mustSpec(t, per)

	depth := int64(p.MaxDepthFrom(master))
	var prevRatio float64 = math.Inf(1)
	for _, nTasks := range []int64{100, 1000, 10000, 100000} {
		n := big.NewInt(nTasks)
		periods, err := event.RunUntil(spec, n, event.PeriodicOptions{})
		if err != nil {
			t.Fatal(err)
		}
		// Absolute loss: at most depth+1 extra periods over the fluid
		// lower bound ceil(n / tasksPerPeriod).
		lbPeriods := new(big.Int).Add(n, new(big.Int).Sub(per.TasksPerPeriod, big.NewInt(1)))
		lbPeriods.Div(lbPeriods, per.TasksPerPeriod)
		loss := periods - lbPeriods.Int64()
		if loss < 0 {
			t.Fatalf("n=%d: makespan beats lower bound", nTasks)
		}
		if loss > depth+1 {
			t.Fatalf("n=%d: loss %d periods exceeds depth+1 = %d (not a constant)", nTasks, loss, depth+1)
		}
		// Ratio to the time lower bound n/ntask decreases toward 1.
		T := new(big.Rat).SetInt(per.Period)
		makespan, _ := new(big.Rat).Mul(T, new(big.Rat).SetInt64(periods)).Float64()
		lb := float64(nTasks) / per.Throughput.Float64()
		ratio := makespan / lb
		if ratio < 1-1e-9 {
			t.Fatalf("n=%d: ratio %v < 1", nTasks, ratio)
		}
		if ratio > prevRatio+1e-9 {
			t.Fatalf("n=%d: ratio %v increased from %v", nTasks, ratio, prevRatio)
		}
		prevRatio = ratio
	}
	if prevRatio > 1.001 {
		t.Fatalf("ratio at n=100000 still %v, not converging to 1", prevRatio)
	}
}

func TestRunUntilErrors(t *testing.T) {
	p := platform.Figure1()
	per := mustPeriodic(t, p, 0)
	spec := mustSpec(t, per)
	bad := *spec
	bad.Commodities = append([]event.Commodity(nil), spec.Commodities...)
	bad.Commodities[0].Quota = big.NewInt(0)
	if _, err := event.RunUntil(&bad, big.NewInt(10), event.PeriodicOptions{}); err == nil {
		t.Fatal("expected error for broken schedule")
	}
}

// fcfsPolicy serves pending requests in arrival order.
type fcfsPolicy struct{}

func (fcfsPolicy) Pick(from int, pending []int, st *event.OnlineState) int { return 0 }
func (fcfsPolicy) Name() string                                            { return "fcfs" }

func TestOnlineStarCompletesAllTasks(t *testing.T) {
	p := platform.Star(platform.WInt(5),
		[]platform.Weight{platform.WInt(2), platform.WInt(3)},
		[]rat.Rat{rat.One(), rat.One()})
	tree, err := event.ShortestPathTree(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := event.RunOnlineMasterSlave(event.OnlineConfig{
		Platform: p, Tree: tree, Master: 0, Tasks: 200, Policy: fcfsPolicy{},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Done != 200 {
		t.Fatalf("done = %d, want 200", res.Done)
	}
	sum := 0
	for _, d := range res.PerNode {
		sum += d
	}
	if sum != 200 {
		t.Fatalf("per-node sum %d != 200", sum)
	}
	if res.Makespan <= 0 {
		t.Fatal("no time elapsed")
	}
}

func TestOnlineNeverBeatsSteadyStateBound(t *testing.T) {
	// On any platform the online greedy cannot beat n / ntask(G)
	// asymptotically — the "why" of the paper. Allow ramp-up slack.
	p := platform.Figure1()
	master := p.NodeByName("P1")
	ms, err := core.SolveMasterSlave(p, master)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := event.ShortestPathTree(p, master)
	if err != nil {
		t.Fatal(err)
	}
	const tasks = 2000
	res, err := event.RunOnlineMasterSlave(event.OnlineConfig{
		Platform: p, Tree: tree, Master: master, Tasks: tasks, Policy: fcfsPolicy{},
	})
	if err != nil {
		t.Fatal(err)
	}
	lb := float64(tasks) / ms.Throughput.Float64()
	if res.Makespan < lb*0.999 {
		t.Fatalf("online makespan %v beats the steady-state lower bound %v", res.Makespan, lb)
	}
	t.Logf("online fcfs: makespan %.1f vs steady-state bound %.1f (ratio %.3f)",
		res.Makespan, lb, res.Makespan/lb)
}

func TestOnlineHorizonMode(t *testing.T) {
	p := platform.Star(platform.WInt(2),
		[]platform.Weight{platform.WInt(2)}, []rat.Rat{rat.One()})
	tree, _ := event.ShortestPathTree(p, 0)
	res, err := event.RunOnlineMasterSlave(event.OnlineConfig{
		Platform: p, Tree: tree, Master: 0, Horizon: 100, Policy: fcfsPolicy{},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Both unit-ish nodes work near full rate: about 100 tasks total
	// (master w=2 -> 50, worker w=2 -> ~50 minus pipeline fill).
	if res.Done < 90 || res.Done > 110 {
		t.Fatalf("done = %d, want ~100", res.Done)
	}
}

func TestOnlineWithLoadTraces(t *testing.T) {
	// Slowing the worker's link by 4x must reduce its completed count.
	p := platform.Star(platform.WInt(100),
		[]platform.Weight{platform.WInt(1)}, []rat.Rat{rat.One()})
	tree, _ := event.ShortestPathTree(p, 0)
	base, err := event.RunOnlineMasterSlave(event.OnlineConfig{
		Platform: p, Tree: tree, Master: 0, Horizon: 200, Policy: fcfsPolicy{},
	})
	if err != nil {
		t.Fatal(err)
	}
	slowed, err := event.RunOnlineMasterSlave(event.OnlineConfig{
		Platform: p, Tree: tree, Master: 0, Horizon: 200, Policy: fcfsPolicy{},
		EdgeLoad: []*event.LoadTrace{event.ConstantLoad(4)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if slowed.PerNode[1] >= base.PerNode[1] {
		t.Fatalf("slowed link did not reduce worker tasks: %d vs %d",
			slowed.PerNode[1], base.PerNode[1])
	}
}

func TestOnlineEpochObservations(t *testing.T) {
	p := platform.Star(platform.WInt(2),
		[]platform.Weight{platform.WInt(2)}, []rat.Rat{rat.One()})
	tree, _ := event.ShortestPathTree(p, 0)
	var epochs int
	var lastW float64
	_, err := event.RunOnlineMasterSlave(event.OnlineConfig{
		Platform: p, Tree: tree, Master: 0, Horizon: 100, Policy: fcfsPolicy{},
		EpochLength: 10,
		OnEpoch: func(now float64, obs *event.EpochObservation) {
			epochs++
			if obs.EffectiveW[1] > 0 {
				lastW = obs.EffectiveW[1]
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if epochs < 8 {
		t.Fatalf("epochs = %d, want ~10", epochs)
	}
	// Observed seconds/task at the worker should be close to w=2.
	if lastW < 1.5 || lastW > 2.5 {
		t.Fatalf("observed w = %v, want ~2", lastW)
	}
}

func TestOnlineConfigErrors(t *testing.T) {
	p := platform.Figure1()
	tree, _ := event.ShortestPathTree(p, 0)
	if _, err := event.RunOnlineMasterSlave(event.OnlineConfig{Platform: p, Tree: tree, Master: -1, Tasks: 1, Policy: fcfsPolicy{}}); err == nil {
		t.Fatal("expected bad-master error")
	}
	if _, err := event.RunOnlineMasterSlave(event.OnlineConfig{Platform: p, Tree: tree[:2], Master: 0, Tasks: 1, Policy: fcfsPolicy{}}); err == nil {
		t.Fatal("expected tree-size error")
	}
	if _, err := event.RunOnlineMasterSlave(event.OnlineConfig{Platform: p, Tree: tree, Master: 0, Policy: fcfsPolicy{}}); err == nil {
		t.Fatal("expected no-tasks-no-horizon error")
	}
}

func TestShortestPathTree(t *testing.T) {
	p := platform.Figure1()
	tree, err := event.ShortestPathTree(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if tree[0] != -1 {
		t.Fatal("master must have no parent")
	}
	// Every non-master node's parent edge enters it; following
	// parents reaches the master.
	for v := 1; v < p.NumNodes(); v++ {
		if p.Edge(tree[v]).To != v {
			t.Fatalf("tree edge of %d does not enter it", v)
		}
		at, steps := v, 0
		for at != 0 {
			at = p.Edge(tree[at]).From
			if steps++; steps > p.NumNodes() {
				t.Fatal("parent chain does not reach master")
			}
		}
	}
	// Unreachable nodes produce an error.
	q := platform.New()
	q.AddNode("A", platform.WInt(1))
	q.AddNode("B", platform.WInt(1))
	if _, err := event.ShortestPathTree(q, 0); err == nil {
		t.Fatal("expected unreachable error")
	}
}
