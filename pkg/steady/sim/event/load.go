package event

import (
	"math/rand"
	"sort"
)

// LoadTrace is a piecewise-constant multiplier applied to a
// resource's base cost (>1 = slower). It models the load variations
// that §5.5's dynamic scheduling responds to; an NWS-like monitor
// observes it only through measurements.
type LoadTrace struct {
	times []float64 // breakpoints, strictly increasing, starting at 0
	mult  []float64 // multiplier on [times[i], times[i+1])
}

// ConstantLoad returns a trace with a fixed multiplier.
func ConstantLoad(m float64) *LoadTrace {
	return &LoadTrace{times: []float64{0}, mult: []float64{m}}
}

// StepLoad returns a trace that switches multipliers at the given
// breakpoints: mult[i] applies from times[i] (times[0] must be 0).
func StepLoad(times, mult []float64) *LoadTrace {
	if len(times) != len(mult) || len(times) == 0 || times[0] != 0 {
		panic("event: malformed step load trace")
	}
	for i := 1; i < len(times); i++ {
		if times[i] <= times[i-1] {
			panic("event: load trace breakpoints must increase")
		}
	}
	return &LoadTrace{times: append([]float64(nil), times...), mult: append([]float64(nil), mult...)}
}

// RandomWalkLoad builds a load trace that re-draws a multiplier in
// [lo, hi] every step time units (a coarse model of ambient load).
// All randomness comes from the caller-seeded rng, preserving the
// package's determinism contract.
func RandomWalkLoad(rng *rand.Rand, horizon, step, lo, hi float64) *LoadTrace {
	var times, mult []float64
	m := lo + rng.Float64()*(hi-lo)
	for t := 0.0; t < horizon; t += step {
		times = append(times, t)
		mult = append(mult, m)
		// Random walk with reflection.
		m += (rng.Float64() - 0.5) * (hi - lo) * 0.4
		if m < lo {
			m = 2*lo - m
		}
		if m > hi {
			m = 2*hi - m
		}
	}
	return &LoadTrace{times: times, mult: mult}
}

// At returns the multiplier in effect at time t. A nil or empty trace
// is the identity (multiplier 1). Times before the first breakpoint
// clamp to the first segment and times past the last breakpoint hold
// the last multiplier, so callers may query any t without range
// checks.
func (tr *LoadTrace) At(t float64) float64 {
	if tr == nil || len(tr.mult) == 0 {
		return 1
	}
	i := sort.SearchFloat64s(tr.times, t)
	// SearchFloat64s returns the first index with times[i] >= t; the
	// active segment is the one before, unless t hits a breakpoint.
	if i < len(tr.times) && tr.times[i] == t {
		return tr.mult[i]
	}
	if i == 0 {
		return tr.mult[0]
	}
	return tr.mult[i-1]
}

// Mean returns the average multiplier over [0, horizon]. A nil or
// empty trace means 1; a non-positive horizon degenerates to At(0).
func (tr *LoadTrace) Mean(horizon float64) float64 {
	if tr == nil || len(tr.mult) == 0 {
		return 1
	}
	if horizon <= 0 {
		return tr.At(0)
	}
	total := 0.0
	for i := range tr.times {
		start := tr.times[i]
		if start >= horizon {
			break
		}
		end := horizon
		if i+1 < len(tr.times) && tr.times[i+1] < horizon {
			end = tr.times[i+1]
		}
		total += tr.mult[i] * (end - start)
	}
	return total / horizon
}
