package sim

import (
	"context"
	"fmt"
	"math/big"

	"repro/pkg/steady"
	"repro/pkg/steady/rat"
)

// replayStats is the outcome of an exact periodic replay.
type replayStats struct {
	// periods is the reported horizon (includes extrapolation).
	periods int64
	// steadyAfter is the first period index sustaining every quota
	// (-1 if not reached within the horizon).
	steadyAfter int64
	// ops is the total number of completed operations over the
	// horizon, summed across commodities.
	ops *big.Int
	// ratio is min over commodities of done / (periods * quota): the
	// fraction of the schedule's own steady-state rate achieved.
	ratio rat.Rat
}

// commodityState is the store-and-forward state of one commodity.
//
// Flow commodities track a per-node buffer: forwarding and consuming
// debit it, receptions credit it at the end of the period (so a unit
// received in period p is usable from period p+1 — the §4.2
// store-and-forward discipline). Replicated commodities track
// cumulative receptions per node and cumulative sends per edge:
// copies are free, so sending does not debit, but an edge can only
// have carried as many instances as its tail had received by the end
// of the previous period.
type commodityState struct {
	c *steady.ReplayCommodity

	buffer  []*big.Int // flow: per-node buffered units
	arrived []*big.Int // replicated: cumulative receptions
	sent    []*big.Int // replicated: cumulative sends per edge

	done     *big.Int // cumulative completions
	lastDone *big.Int // completions in the most recent period
}

func newCommodityState(rp *steady.Replay, c *steady.ReplayCommodity) *commodityState {
	n := rp.Platform.NumNodes()
	st := &commodityState{c: c, done: new(big.Int), lastDone: new(big.Int)}
	if c.Replicated {
		st.arrived = zeros(n)
		st.sent = zeros(rp.Platform.NumEdges())
	} else {
		st.buffer = zeros(n)
	}
	return st
}

func zeros(n int) []*big.Int {
	out := make([]*big.Int, n)
	for i := range out {
		out[i] = new(big.Int)
	}
	return out
}

// step advances the commodity by one period and records the period's
// completions in lastDone.
func (st *commodityState) step(rp *steady.Replay) {
	p := rp.Platform
	c := st.c
	n := p.NumNodes()
	recv := zeros(n)
	doneThis := new(big.Int)

	if c.Replicated {
		for e := 0; e < p.NumEdges(); e++ {
			want := c.EdgeCount[e]
			if want == nil || want.Sign() == 0 {
				continue
			}
			from := p.Edge(e).From
			x := new(big.Int).Set(want)
			if from != c.Source {
				// Cumulative sends may not exceed cumulative
				// receptions as of the end of the previous period.
				headroom := new(big.Int).Sub(st.arrived[from], st.sent[e])
				if headroom.Sign() < 0 {
					headroom.SetInt64(0)
				}
				if x.Cmp(headroom) > 0 {
					x.Set(headroom)
				}
			}
			st.sent[e].Add(st.sent[e], x)
			recv[p.Edge(e).To].Add(recv[p.Edge(e).To], x)
		}
		for i := 0; i < n; i++ {
			st.arrived[i].Add(st.arrived[i], recv[i])
		}
		// Completed instances: delivered to every sink.
		min := minOver(st.arrived, c.Sinks)
		doneThis.Sub(min, st.done)
		st.done.Set(min)
		st.lastDone.Set(doneThis)
		return
	}

	// Flow semantics: forward first (fixed edge order), then consume;
	// any fixed priority reaches steady state within the platform
	// depth once upstream buffers fill.
	for i := 0; i < n; i++ {
		source := i == c.Source
		avail := new(big.Int).Set(st.buffer[i])
		for _, e := range p.OutEdges(i) {
			want := c.EdgeCount[e]
			if want == nil || want.Sign() == 0 {
				continue
			}
			x := new(big.Int).Set(want)
			if !source {
				if x.Cmp(avail) > 0 {
					x.Set(avail)
				}
				avail.Sub(avail, x)
			}
			recv[p.Edge(e).To].Add(recv[p.Edge(e).To], x)
		}
		if c.Consume != nil {
			take := new(big.Int).Set(c.Consume[i])
			if !source {
				if take.Cmp(avail) > 0 {
					take.Set(avail)
				}
				avail.Sub(avail, take)
			}
			doneThis.Add(doneThis, take)
		}
		if !source {
			st.buffer[i].Set(avail)
		}
	}
	for _, s := range c.Sinks {
		// Deliveries complete on arrival; the copy also lands in the
		// buffer below, in case the schedule routes through a sink.
		doneThis.Add(doneThis, recv[s])
	}
	for i := 0; i < n; i++ {
		if i != c.Source {
			st.buffer[i].Add(st.buffer[i], recv[i])
		}
	}
	st.done.Add(st.done, doneThis)
	st.lastDone.Set(doneThis)
}

func minOver(vals []*big.Int, idx []int) *big.Int {
	min := new(big.Int)
	for j, i := range idx {
		if j == 0 || vals[i].Cmp(min) < 0 {
			min.Set(vals[i])
		}
	}
	return min
}

// atQuota reports whether the most recent period completed the full
// per-period quota.
func (st *commodityState) atQuota() bool { return st.lastDone.Cmp(st.c.Quota) == 0 }

// replayPeriodic executes the replay for the given horizon. It
// simulates period by period until every commodity sustains its quota
// for two consecutive periods, then extrapolates the remaining
// horizon arithmetically (in steady state each period adds exactly
// the quota), so long horizons are O(transient), not O(periods).
func replayPeriodic(ctx context.Context, rp *steady.Replay, periods int64) (*replayStats, error) {
	if periods <= 0 {
		return nil, fmt.Errorf("sim: non-positive horizon")
	}
	if len(rp.Commodities) == 0 {
		return nil, fmt.Errorf("sim: replay has no commodities")
	}
	states := make([]*commodityState, len(rp.Commodities))
	for i := range rp.Commodities {
		c := &rp.Commodities[i]
		if c.Quota == nil || c.Quota.Sign() <= 0 {
			return nil, fmt.Errorf("sim: commodity %s does no work", c.Name)
		}
		states[i] = newCommodityState(rp, c)
	}

	steadyAfter := int64(-1)
	steadyRun := 0
	simulated := int64(0)
	for ; simulated < periods; simulated++ {
		if simulated%64 == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		allQuota := true
		for _, st := range states {
			st.step(rp)
			if !st.atQuota() {
				allQuota = false
			}
		}
		if allQuota {
			if steadyAfter < 0 {
				steadyAfter = simulated
			}
			steadyRun++
			if steadyRun >= 2 {
				simulated++
				break
			}
		} else {
			steadyAfter = -1
			steadyRun = 0
		}
	}

	// Extrapolate the remaining horizon: every steady period adds
	// exactly the quota.
	remaining := periods - simulated
	ops := new(big.Int)
	ratio := rat.Rat{}
	pb := big.NewInt(periods)
	for i, st := range states {
		total := new(big.Int).Set(st.done)
		if remaining > 0 {
			total.Add(total, new(big.Int).Mul(st.c.Quota, big.NewInt(remaining)))
		}
		ops.Add(ops, total)
		r := bigRat(total, new(big.Int).Mul(st.c.Quota, pb))
		if i == 0 || r.Less(ratio) {
			ratio = r
		}
	}
	return &replayStats{periods: periods, steadyAfter: steadyAfter, ops: ops, ratio: ratio}, nil
}
