package sim

import (
	"context"
	"errors"

	"repro/pkg/steady"
	"repro/pkg/steady/sim/event"
)

// specFromReplay converts the problem-independent replay description
// (pkg/steady.Replay) into the event core's periodic spec. The two
// types mirror each other field for field; the copy exists only so
// pkg/steady/sim/event stays a leaf package without a dependency on
// pkg/steady.
func specFromReplay(rp *steady.Replay) *event.PeriodicSpec {
	spec := &event.PeriodicSpec{Platform: rp.Platform}
	for i := range rp.Commodities {
		c := &rp.Commodities[i]
		spec.Commodities = append(spec.Commodities, event.Commodity{
			Name:       c.Name,
			Source:     c.Source,
			Replicated: c.Replicated,
			EdgeCount:  c.EdgeCount,
			Consume:    c.Consume,
			Sinks:      c.Sinks,
			Quota:      c.Quota,
		})
	}
	return spec
}

// replayPeriodic executes the exact periodic replay on the event core,
// surfacing a cancellation as the context's error.
func replayPeriodic(ctx context.Context, rp *steady.Replay, periods int64, l *event.Loop) (*event.PeriodicStats, error) {
	st, err := event.RunPeriodic(specFromReplay(rp), periods, event.PeriodicOptions{
		Loop:      l,
		Interrupt: ctx.Done(),
	})
	if err != nil {
		if errors.Is(err, event.ErrInterrupted) && ctx.Err() != nil {
			return nil, ctx.Err()
		}
		return nil, err
	}
	return st, nil
}
