package sim

import (
	"context"
	"errors"
	"math/big"
	"strings"
	"testing"
	"time"

	"repro/pkg/steady"
	"repro/pkg/steady/platform"
	"repro/pkg/steady/rat"
)

func solveOn(t *testing.T, spec steady.Spec, p *platform.Platform) *steady.Result {
	t.Helper()
	solver, err := steady.New(spec)
	if err != nil {
		t.Fatalf("New(%+v): %v", spec, err)
	}
	res, err := solver.Solve(context.Background(), p)
	if err != nil {
		t.Fatalf("Solve(%s): %v", solver.Name(), err)
	}
	return res
}

// star returns a one-level master/worker platform on which the
// multicast max-operator bound is achievable (a single tree).
func star(workers int) *platform.Platform {
	ws := make([]platform.Weight, workers)
	cs := make([]rat.Rat, workers)
	for i := range ws {
		ws[i] = platform.WInt(int64(i + 1))
		cs[i] = rat.FromInt(1)
	}
	return platform.Star(platform.WInt(1), ws, cs)
}

// funnel returns the reverse of a star: workers with direct links
// into a root, the natural reduce platform.
func funnel(workers int) *platform.Platform {
	return star(workers).Reverse()
}

// TestAsymptoticOptimalityAllSolvers is the acceptance test of the
// simulation subsystem: for every registered problem, replaying the
// reconstructed (or companion) schedule on a sample platform achieves
// at least 95% of the certified steady-state throughput within the
// automatically-sized horizon, with a startup transient bounded by
// the platform size.
func TestAsymptoticOptimalityAllSolvers(t *testing.T) {
	fig1 := platform.Figure1()
	fig2 := platform.Figure2()
	cases := []struct {
		spec steady.Spec
		p    *platform.Platform
	}{
		{steady.Spec{Problem: "masterslave", Root: "P1"}, fig1},
		{steady.Spec{Problem: "scatter", Root: "P1", Targets: []string{"P4", "P6"}}, fig1},
		{steady.Spec{Problem: "multicast-sum", Root: "P0", Targets: []string{"P5", "P6"}}, fig2},
		{steady.Spec{Problem: "multicast-trees", Root: "P0", Targets: []string{"P5", "P6"}}, fig2},
		{steady.Spec{Problem: "multicast", Root: "P0", Targets: []string{"P1", "P2", "P3"}}, star(3)},
		{steady.Spec{Problem: "broadcast", Root: "P0"}, fig2},
		{steady.Spec{Problem: "reduce", Root: "P0"}, funnel(3)},
	}

	covered := map[string]bool{}
	eng := New(Config{})
	for _, c := range cases {
		c := c
		t.Run(c.spec.Problem, func(t *testing.T) {
			covered[c.spec.Problem] = true
			res := solveOn(t, c.spec, c.p)
			rep, err := eng.Run(context.Background(), res, Scenario{})
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			if rep.Kind != "periodic" {
				t.Fatalf("kind = %q, want periodic", rep.Kind)
			}
			if rep.RatioValue < 0.95 {
				t.Errorf("optimality ratio %v (%s) < 0.95 after %d periods",
					rep.Ratio, rep.Achieved, rep.Periods)
			}
			if rep.SteadyAfter < 0 {
				t.Errorf("steady state never sustained (ratio %s)", rep.Ratio)
			}
			if n := int64(c.p.NumNodes()); rep.SteadyAfter > n {
				t.Errorf("transient %d periods > platform size %d", rep.SteadyAfter, n)
			}
			if rep.Periods <= 0 || rep.Ops == "" || rep.Period == "" {
				t.Errorf("incomplete report: %+v", rep)
			}
		})
	}
	for _, problem := range steady.Problems() {
		if !covered[problem] {
			t.Errorf("registered problem %s not covered by the optimality table", problem)
		}
	}
}

// TestReplayMatchesInternalSimulator pins the generic replay against
// the specialized master-slave simulator: identical per-period
// semantics must yield identical task totals (and validates the
// steady-state extrapolation against a fully-simulated run).
func TestReplayMatchesInternalSimulator(t *testing.T) {
	res := solveOn(t, steady.Spec{Problem: "masterslave", Root: "P1"}, platform.Figure1())
	sched, err := res.Reconstruct()
	if err != nil {
		t.Fatal(err)
	}
	const periods = 200
	simu, err := sched.Simulate(periods)
	if err != nil {
		t.Fatal(err)
	}
	internalTotal := new(big.Int)
	for _, d := range simu.DonePerPeriod {
		internalTotal.Add(internalTotal, d)
	}

	rep, err := New(Config{}).Run(context.Background(), res, Scenario{Periods: periods})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ops != internalTotal.String() {
		t.Errorf("replay ops %s != internal simulator %s over %d periods",
			rep.Ops, internalTotal, periods)
	}
	if rep.SteadyAfter != simu.SteadyAfter {
		t.Errorf("replay steady after %d != internal %d", rep.SteadyAfter, simu.SteadyAfter)
	}
}

// TestMulticastGapReported verifies the engine reports the §4.3
// multicast gap honestly: on Figure 2 the max-operator bound is
// unachievable, so the replayed companion packing must land strictly
// below it while still sustaining its own schedule.
func TestMulticastGapReported(t *testing.T) {
	p := platform.Figure2()
	res := solveOn(t, steady.Spec{Problem: "multicast", Root: "P0", Targets: []string{"P5", "P6"}}, p)
	rep, err := New(Config{}).Run(context.Background(), res, Scenario{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Derived != "multicast-trees" {
		t.Fatalf("derived = %q, want multicast-trees", rep.Derived)
	}
	if rep.RatioValue >= 1 {
		t.Errorf("Figure 2 gap not reported: ratio %s", rep.Ratio)
	}
	if rep.SteadyAfter < 0 {
		t.Errorf("companion schedule never reached steady state")
	}
}

func TestGreedySendOrReceive(t *testing.T) {
	res := solveOn(t, steady.Spec{Problem: "masterslave", Root: "P1", Model: steady.SendOrReceive},
		platform.Figure1())
	rep, err := New(Config{}).Run(context.Background(), res, Scenario{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Kind != "greedy" {
		t.Fatalf("kind = %q, want greedy", rep.Kind)
	}
	if rep.RatioValue <= 0 || rep.RatioValue > 1 {
		t.Errorf("greedy ratio %v outside (0, 1]", rep.RatioValue)
	}
}

func TestDynamicScenarioSlowdown(t *testing.T) {
	res := solveOn(t, steady.Spec{Problem: "masterslave", Root: "P1"}, platform.Figure1())
	eng := New(Config{})
	sc := Scenario{
		Name:      "p2-slow",
		Tasks:     500,
		Slowdowns: []Slowdown{{Node: "P2", Factor: 3, From: 10, Until: 100}},
	}
	rep, err := eng.Run(context.Background(), res, sc)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Kind != "online" {
		t.Fatalf("kind = %q, want online", rep.Kind)
	}
	if rep.Done != 500 {
		t.Errorf("done = %d, want 500", rep.Done)
	}
	if rep.Makespan <= 0 || rep.AchievedValue <= 0 {
		t.Errorf("empty dynamic report: %+v", rep)
	}
	// A slowdown cannot beat the certified rate on the nominal
	// platform by more than rounding.
	if rep.RatioValue > 1.05 {
		t.Errorf("dynamic ratio %v implausibly above certified", rep.RatioValue)
	}
}

func TestDynamicAdaptiveResolves(t *testing.T) {
	res := solveOn(t, steady.Spec{Problem: "masterslave", Root: "P1"}, platform.Figure1())
	sc := Scenario{
		Tasks:       400,
		Adaptive:    true,
		EpochLength: 20,
		NodeLoad: map[string]TraceSpec{
			"P4": {Kind: "random-walk", Horizon: 2000, Step: 50, Lo: 1, Hi: 3},
		},
		Seed: 7,
	}
	rep, err := New(Config{}).Run(context.Background(), res, sc)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Resolves < 1 {
		t.Errorf("adaptive run recorded %d LP re-solves, want >= 1", rep.Resolves)
	}
	if rep.Done != 400 {
		t.Errorf("done = %d, want 400", rep.Done)
	}
}

// TestDynamicSeedDeterminism pins the "same seed, same scenario"
// contract: random-walk traces are assigned to resources in sorted
// key order, so Go's randomized map iteration cannot shuffle which
// resource gets which walk between runs.
func TestDynamicSeedDeterminism(t *testing.T) {
	res := solveOn(t, steady.Spec{Problem: "masterslave", Root: "P1"}, platform.Figure1())
	eng := New(Config{})
	walk := TraceSpec{Kind: "random-walk", Horizon: 1000, Step: 20, Lo: 1, Hi: 3}
	sc := Scenario{
		Tasks: 400,
		Seed:  11,
		NodeLoad: map[string]TraceSpec{
			"P2": walk, "P3": walk, "P4": walk, "P5": walk, "P6": walk,
		},
		EdgeLoad: map[string]TraceSpec{
			EdgeKey("P1", "P2"): walk, EdgeKey("P2", "P4"): walk, EdgeKey("P2", "P5"): walk,
		},
	}
	first, err := eng.Run(context.Background(), res, sc)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		again, err := eng.Run(context.Background(), res, sc)
		if err != nil {
			t.Fatal(err)
		}
		if again.Makespan != first.Makespan || again.Done != first.Done {
			t.Fatalf("run %d diverged: makespan %v vs %v, done %d vs %d",
				i, again.Makespan, first.Makespan, again.Done, first.Done)
		}
	}
}

// TestDynamicTimeoutInterrupts pins the dynamic path's timeout
// contract: the event simulator aborts through OnlineConfig.Interrupt
// and Run surfaces the context's error (the server maps it to 504).
func TestDynamicTimeoutInterrupts(t *testing.T) {
	res := solveOn(t, steady.Spec{Problem: "masterslave", Root: "P1"}, platform.Figure1())
	eng := New(Config{})
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := eng.Run(ctx, res, Scenario{Tasks: 100000})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("interrupt took %v, simulator did not stop promptly", elapsed)
	}
}

func TestDynamicRequiresMasterSlave(t *testing.T) {
	res := solveOn(t, steady.Spec{Problem: "scatter", Root: "P1", Targets: []string{"P4"}},
		platform.Figure1())
	_, err := New(Config{}).Run(context.Background(), res, Scenario{Tasks: 10})
	if err == nil || !strings.Contains(err.Error(), "masterslave") {
		t.Errorf("expected masterslave-only error, got %v", err)
	}
}

func TestScenarioValidation(t *testing.T) {
	bad := []Scenario{
		{Periods: -1},
		{NodeLoad: map[string]TraceSpec{"P1": {Kind: "constant", Value: 0}}},
		{NodeLoad: map[string]TraceSpec{"P1": {Kind: "steps", Times: []float64{1, 2}, Mult: []float64{1, 2}}}},
		{NodeLoad: map[string]TraceSpec{"P1": {Kind: "steps", Times: []float64{0, 0}, Mult: []float64{1, 2}}}},
		{NodeLoad: map[string]TraceSpec{"P1": {Kind: "random-walk", Horizon: 0, Step: 1, Lo: 1, Hi: 2}}},
		{NodeLoad: map[string]TraceSpec{"P1": {Kind: "wat"}}},
		{EdgeLoad: map[string]TraceSpec{"nope": {Kind: "constant", Value: 2}}},
		{Slowdowns: []Slowdown{{Factor: 2}}},
		{Slowdowns: []Slowdown{{Node: "P1", Edge: "P1->P2", Factor: 2}}},
		{Slowdowns: []Slowdown{{Node: "P1", Factor: 0}}},
		{Slowdowns: []Slowdown{{Node: "P1", Factor: 2, From: 10, Until: 5}}},
		{Slowdowns: []Slowdown{{Node: "P1", Factor: 2}, {Node: "P1", Factor: 3}}},
		{Slowdowns: []Slowdown{{Edge: "P1->P2", Factor: 2}, {Edge: "P1->P2", Factor: 3}}},
	}
	for i, sc := range bad {
		if err := sc.Validate(); err == nil {
			t.Errorf("scenario %d unexpectedly valid: %+v", i, sc)
		}
	}
	good := Scenario{
		Periods: 10,
		NodeLoad: map[string]TraceSpec{
			"P1": {Value: 2},
			"P2": {Kind: "steps", Times: []float64{0, 5}, Mult: []float64{1, 2}},
		},
		EdgeLoad:  map[string]TraceSpec{EdgeKey("P1", "P2"): {Kind: "random-walk", Horizon: 100, Step: 10, Lo: 1, Hi: 2}},
		Slowdowns: []Slowdown{{Edge: "P2->P4", Factor: 4, From: 1, Until: 2}},
	}
	if err := good.Validate(); err != nil {
		t.Errorf("valid scenario rejected: %v", err)
	}
}

func TestDynamicUnknownResources(t *testing.T) {
	res := solveOn(t, steady.Spec{Problem: "masterslave", Root: "P1"}, platform.Figure1())
	eng := New(Config{})
	for _, sc := range []Scenario{
		{Tasks: 10, NodeLoad: map[string]TraceSpec{"PX": {Value: 2}}},
		{Tasks: 10, EdgeLoad: map[string]TraceSpec{"P1->PX": {Value: 2}}},
		{Tasks: 10, EdgeLoad: map[string]TraceSpec{"P4->P6": {Value: 2}}}, // no such link
	} {
		if _, err := eng.Run(context.Background(), res, sc); err == nil {
			t.Errorf("scenario %+v unexpectedly ran", sc)
		}
	}
}

func TestBundleRoundTrip(t *testing.T) {
	p := platform.Figure1()
	sc := Scenario{
		Name:     "bundled",
		NodeLoad: map[string]TraceSpec{"P2": {Kind: "random-walk", Horizon: 200, Step: 20, Lo: 1, Hi: 3}},
	}
	var buf strings.Builder
	if err := WriteBundle(&buf, p, sc); err != nil {
		t.Fatal(err)
	}
	q, got, err := ReadBundle(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if q.NumNodes() != p.NumNodes() || q.NumEdges() != p.NumEdges() {
		t.Errorf("platform did not round-trip: %d/%d nodes, %d/%d edges",
			q.NumNodes(), p.NumNodes(), q.NumEdges(), p.NumEdges())
	}
	if got.Name != sc.Name || len(got.NodeLoad) != 1 {
		t.Errorf("scenario did not round-trip: %+v", got)
	}
}

// TestSlowdownSpec pins the slowdown-to-steps conversion feeding the
// event simulator.
func TestSlowdownSpec(t *testing.T) {
	tr, err := Slowdown{Node: "X", Factor: 4, From: 10, Until: 20}.spec().trace(nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []struct{ t, want float64 }{{0, 1}, {9, 1}, {10, 4}, {19, 4}, {20, 1}, {100, 1}} {
		if got := tr.At(c.t); got != c.want {
			t.Errorf("slowdown At(%v) = %v, want %v", c.t, got, c.want)
		}
	}
	// From = 0, no Until: slowed forever.
	tr2, err := Slowdown{Node: "X", Factor: 2}.spec().trace(nil)
	if err != nil {
		t.Fatal(err)
	}
	if tr2.At(0) != 2 || tr2.At(1e6) != 2 {
		t.Errorf("permanent slowdown not flat: %v %v", tr2.At(0), tr2.At(1e6))
	}
}
