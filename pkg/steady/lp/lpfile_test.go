package lp

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"repro/pkg/steady/rat"
)

func TestWriteLPSmoke(t *testing.T) {
	m := NewModel()
	x := m.VarRange("alpha[P1]", ri(1))
	y := m.Var("s[P1->P2]")
	z := m.Var("free var")
	m.SetFree(z)
	m.Objective(Maximize, expr(term(x, 3), term(y, -2)))
	m.Le("cap", expr(term(x, 1), term(y, 1)), ri(4))
	m.Ge("lo", expr(term(y, 2)), ri(1))
	m.Eq("fix", expr(term(z, 1), term(x, 1)), ri(2))

	var buf bytes.Buffer
	if err := m.WriteLP(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"Maximize", "Subject To", "Bounds", "End",
		"<= 4", ">= 1", "= 2",
		"free",
		"0 <= x0_alphaP1 <= 1",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("LP file missing %q:\n%s", want, out)
		}
	}
}

func TestWriteLPMinimizeAndEmptyObjective(t *testing.T) {
	m := NewModel()
	x := m.Var("x")
	m.Objective(Minimize, Expr{})
	m.Le("c", expr(term(x, 1)), ri(1))
	var buf bytes.Buffer
	if err := m.WriteLP(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Minimize") {
		t.Fatal("missing Minimize header")
	}
}

// randomMixedModel exercises GE and EQ rows too: feasibility is
// guaranteed by construction around a known point.
func randomMixedModel(rng *rand.Rand, nVars int) (*Model, []rat.Rat) {
	m := NewModel()
	point := make([]rat.Rat, nVars)
	vars := make([]Var, nVars)
	for i := range vars {
		point[i] = rr(int64(rng.Intn(5)), int64(1+rng.Intn(3)))
		vars[i] = m.VarRange("x", ri(8))
	}
	obj := Expr{}
	for _, v := range vars {
		obj = append(obj, Term{v, ri(int64(rng.Intn(7) - 3))})
	}
	m.Objective(Maximize, obj)
	for c := 0; c < nVars+2; c++ {
		e := Expr{}
		lhs := rat.Zero()
		for i, v := range vars {
			if rng.Intn(2) == 0 {
				continue
			}
			coef := rr(int64(rng.Intn(7)-3), int64(1+rng.Intn(2)))
			e = append(e, Term{v, coef})
			lhs = lhs.Add(coef.Mul(point[i]))
		}
		if len(e) == 0 {
			continue
		}
		switch rng.Intn(3) {
		case 0: // LE with slack above the point
			m.Le("r", e, lhs.Add(ri(int64(rng.Intn(4)))))
		case 1: // GE with slack below
			m.Ge("r", e, lhs.Sub(ri(int64(rng.Intn(4)))))
		default: // EQ through the point
			m.Eq("r", e, lhs)
		}
	}
	return m, point
}

func TestRandomMixedLPsSolveAndVerify(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 60; trial++ {
		m, point := randomMixedModel(rng, 2+rng.Intn(5))
		if err := m.CheckFeasible(point); err != nil {
			t.Fatalf("trial %d: construction broken: %v", trial, err)
		}
		s, err := m.Solve()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if s.Status != Optimal {
			t.Fatalf("trial %d: status %v for a feasible bounded LP", trial, s.Status)
		}
		if err := m.CheckFeasible(s.Values()); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// The known feasible point cannot beat the optimum.
		if m.ObjectiveAt(point).Cmp(s.Objective) > 0 {
			t.Fatalf("trial %d: feasible point beats optimum", trial)
		}
		// Exact and float solvers agree.
		sf, err := m.SolveFloat()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if sf.Status != Optimal {
			t.Fatalf("trial %d: float status %v", trial, sf.Status)
		}
		if d := s.Objective.Float64() - sf.Objective; d > 1e-6 || d < -1e-6 {
			t.Fatalf("trial %d: exact %v vs float %v", trial, s.Objective, sf.Objective)
		}
	}
}

func TestMixedModelLPFileRoundTripSolvable(t *testing.T) {
	// Writing the LP file must not disturb the model.
	rng := rand.New(rand.NewSource(7))
	m, _ := randomMixedModel(rng, 4)
	var buf bytes.Buffer
	if err := m.WriteLP(&buf); err != nil {
		t.Fatal(err)
	}
	before := buf.Len()
	if before == 0 {
		t.Fatal("empty LP file")
	}
	if _, err := m.Solve(); err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := m.WriteLP(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != before {
		t.Fatal("solving mutated the model's LP rendering")
	}
}
