package lp

import "repro/pkg/steady/obs"

// Pricing selects the entering-variable rule of the exact simplex.
type Pricing int

const (
	// PricingBland always enters the smallest-index improving column.
	// It cannot cycle, and — because it is the rule the historical
	// dense engine used — it reproduces that engine's pivot sequence
	// and optimal vertex bit-for-bit on the same model, which is why
	// it is the default: every certified golden value in this
	// repository (activity variables included, not just objectives)
	// is pinned to it.
	PricingBland Pricing = iota
	// PricingDantzig enters the column with the most positive reduced
	// cost (ties broken by smallest column index). On non-degenerate
	// platform LPs it takes far fewer pivots than Bland's rule; the
	// automatic fallback (Options.BlandAfter) covers the degenerate
	// cases where Dantzig's rule can stall or cycle. Note that a
	// different pivot path can end on a different — equally optimal,
	// equally certified — vertex when the optimum is not unique.
	PricingDantzig
)

func (p Pricing) String() string {
	if p == PricingDantzig {
		return "dantzig"
	}
	return "bland"
}

const (
	// DefaultPivotFactor scales the default pivot budget:
	// factor*(rows+cols+1), a generous budget for the platform-sized
	// programs of this repository.
	DefaultPivotFactor = 200
	// DefaultBlandAfter is the number of consecutive degenerate
	// pivots after which the solver abandons Dantzig pricing for
	// Bland's rule (and returns to Dantzig on the next improving
	// pivot). Exact arithmetic has no numerical stalling, so a run
	// of degenerate pivots this long is evidence of genuine
	// degeneracy — the regime where Dantzig's rule can cycle.
	DefaultBlandAfter = 32
)

// Options configures an exact solve. The zero value (or a nil
// *Options) selects Bland pricing, the default pivot budget and the
// default fallback threshold, matching Model.Solve.
type Options struct {
	// Pricing is the entering rule (default PricingBland).
	Pricing Pricing
	// PivotBudget caps total pivots across all phases; exceeding it
	// returns ErrIterationLimit. <= 0 selects the default budget
	// DefaultPivotFactor*(rows+cols+1).
	PivotBudget int
	// BlandAfter is the consecutive-degenerate-pivot threshold that
	// triggers the Bland anti-cycling fallback under PricingDantzig
	// (it is moot under PricingBland). 0 selects DefaultBlandAfter; a
	// negative value disables the fallback entirely (a cycling LP
	// then runs into PivotBudget — only useful for demonstrating
	// that the fallback matters, as the regression tests do).
	BlandAfter int
	// WarmBasis, when non-nil, asks the solver to start from this
	// basis (normally Solution.Basis() of a structurally identical
	// model solved earlier). A basis that no longer fits the model —
	// wrong shape, singular, or too infeasible to repair with dual
	// pivots — is silently discarded and the solve proceeds cold;
	// Solution.Info.WarmStarted reports which path ran.
	WarmBasis *Basis
	// FloatFirst runs the simplex *search* in sparse float64 and only
	// the *certificate* in exact rationals: the float-optimal basis is
	// reinstalled exactly, primal and dual feasibility are verified in
	// big.Rat, and disagreements are repaired with at most RepairBudget
	// exact pivots (SolveInfo.FloatPivots / RepairPivots report the
	// split). Every returned value is exactly certified — identical
	// guarantees to the pure-exact solve — and if the float phase
	// fails in any way the solver silently falls back to the
	// pure-exact path (SolveInfo.CertifiedCold). A warm basis, when
	// also present and accepted, takes precedence: the float phase
	// only runs for solves that would otherwise be cold.
	FloatFirst bool
	// RepairBudget caps the exact repair pivots of a float-first
	// certification; beyond it the float basis is abandoned and the
	// solve falls back to the pure-exact path. <= 0 selects
	// DefaultRepairFloor + rows.
	RepairBudget int
	// Obs, when non-nil, receives per-solve metrics: pivot and
	// refactorization counters, the solve path taken
	// (cold/warm/float), fallback counts, and wall-time spans per
	// phase. Observation is strictly one-way — nothing read from the
	// registry influences the solve — and a nil registry costs a nil
	// check per solve.
	Obs *obs.Registry
}

// DefaultRepairFloor is the constant part of the default float-first
// repair budget (DefaultRepairFloor + rows): enough slack for the
// handful of pivots a float/exact disagreement needs, far below a
// full cold solve's pivot count on anything sizable.
const DefaultRepairFloor = 32

// resolveRepairBudget resolves Options.RepairBudget for a model with
// nRows standardized rows.
func resolveRepairBudget(o *Options, nRows int) int {
	if o != nil && o.RepairBudget > 0 {
		return o.RepairBudget
	}
	return DefaultRepairFloor + nRows
}

// params are the resolved per-solve knobs.
type params struct {
	pricing    Pricing
	budget     int
	blandAfter int // < 0: fallback disabled
	noFallback bool
}

func (m *Model) resolveParams(o *Options, nRows, nCols int) params {
	p := params{pricing: PricingBland, blandAfter: DefaultBlandAfter}
	if o != nil {
		p.pricing = o.Pricing
		if o.BlandAfter > 0 {
			p.blandAfter = o.BlandAfter
		} else if o.BlandAfter < 0 {
			p.noFallback = true
		}
		if o.PivotBudget > 0 {
			p.budget = o.PivotBudget
		}
	}
	if p.budget <= 0 {
		p.budget = DefaultPivotFactor * (nRows + nCols + 1)
	}
	return p
}
