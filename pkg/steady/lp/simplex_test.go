package lp

import (
	"math/rand"
	"testing"

	"repro/pkg/steady/rat"
)

func ri(n int64) rat.Rat       { return rat.FromInt(n) }
func rr(n, d int64) rat.Rat    { return rat.New(n, d) }
func expr(ts ...Term) Expr     { return Expr(ts) }
func term(v Var, n int64) Term { return Term{v, ri(n)} }

// mustSolve solves and requires Optimal status.
func mustSolve(t *testing.T, m *Model) *Solution {
	t.Helper()
	s, err := m.Solve()
	if err != nil {
		t.Fatalf("solve: %v", err)
	}
	if s.Status != Optimal {
		t.Fatalf("status = %v, want optimal", s.Status)
	}
	if err := m.CheckFeasible(s.Values()); err != nil {
		t.Fatalf("optimal point infeasible: %v", err)
	}
	return s
}

func TestSimpleMax(t *testing.T) {
	// max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18  => 36 at (2,6).
	m := NewModel()
	x, y := m.Var("x"), m.Var("y")
	m.Objective(Maximize, expr(term(x, 3), term(y, 5)))
	m.Le("c1", expr(term(x, 1)), ri(4))
	m.Le("c2", expr(term(y, 2)), ri(12))
	m.Le("c3", expr(term(x, 3), term(y, 2)), ri(18))
	s := mustSolve(t, m)
	if !s.Objective.Equal(ri(36)) {
		t.Fatalf("objective = %v, want 36", s.Objective)
	}
	if !s.Value(x).Equal(ri(2)) || !s.Value(y).Equal(ri(6)) {
		t.Fatalf("point = (%v,%v), want (2,6)", s.Value(x), s.Value(y))
	}
}

func TestMinimizeWithGE(t *testing.T) {
	// min 2x + 3y s.t. x + y >= 10, x >= 2  => optimum 20 at (10,0).
	m := NewModel()
	x, y := m.Var("x"), m.Var("y")
	m.Objective(Minimize, expr(term(x, 2), term(y, 3)))
	m.Ge("sum", expr(term(x, 1), term(y, 1)), ri(10))
	m.Ge("xmin", expr(term(x, 1)), ri(2))
	s := mustSolve(t, m)
	if !s.Objective.Equal(ri(20)) {
		t.Fatalf("objective = %v, want 20", s.Objective)
	}
}

func TestEquality(t *testing.T) {
	// max x + y s.t. x + y == 5, x <= 3 => 5.
	m := NewModel()
	x, y := m.Var("x"), m.Var("y")
	m.Objective(Maximize, expr(term(x, 1), term(y, 1)))
	m.Eq("fix", expr(term(x, 1), term(y, 1)), ri(5))
	m.Le("cap", expr(term(x, 1)), ri(3))
	s := mustSolve(t, m)
	if !s.Objective.Equal(ri(5)) {
		t.Fatalf("objective = %v, want 5", s.Objective)
	}
}

func TestInfeasible(t *testing.T) {
	m := NewModel()
	x := m.Var("x")
	m.Objective(Maximize, expr(term(x, 1)))
	m.Ge("lo", expr(term(x, 1)), ri(5))
	m.Le("hi", expr(term(x, 1)), ri(3))
	s, err := m.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", s.Status)
	}
}

func TestUnbounded(t *testing.T) {
	m := NewModel()
	x := m.Var("x")
	m.Objective(Maximize, expr(term(x, 1)))
	m.Ge("lo", expr(term(x, 1)), ri(1))
	s, err := m.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Unbounded {
		t.Fatalf("status = %v, want unbounded", s.Status)
	}
}

func TestUpperBoundsAsRows(t *testing.T) {
	m := NewModel()
	x := m.VarRange("x", rr(1, 2))
	y := m.VarRange("y", rr(3, 4))
	m.Objective(Maximize, expr(term(x, 1), term(y, 1)))
	s := mustSolve(t, m)
	if !s.Objective.Equal(rr(5, 4)) {
		t.Fatalf("objective = %v, want 5/4", s.Objective)
	}
}

func TestFreeVariable(t *testing.T) {
	// min x^2-like: min y s.t. y >= x - 3, y >= 3 - x with x free:
	// optimum y = 0 at x = 3.
	m := NewModel()
	x, y := m.Var("x"), m.Var("y")
	m.SetFree(x)
	m.Objective(Minimize, expr(term(y, 1)))
	m.Ge("a", expr(term(y, 1), term(x, -1)), ri(-3))
	m.Ge("b", expr(term(y, 1), term(x, 1)), ri(3))
	s := mustSolve(t, m)
	if !s.Objective.IsZero() {
		t.Fatalf("objective = %v, want 0", s.Objective)
	}
	if !s.Value(x).Equal(ri(3)) {
		t.Fatalf("x = %v, want 3", s.Value(x))
	}
}

func TestNegativeRHS(t *testing.T) {
	// max -x s.t. -x >= -4 (i.e. x <= 4), x >= 2 => -2.
	m := NewModel()
	x := m.Var("x")
	m.Objective(Maximize, expr(term(x, -1)))
	m.Ge("neg", expr(term(x, -1)), ri(-4))
	m.Ge("lo", expr(term(x, 1)), ri(2))
	s := mustSolve(t, m)
	if !s.Objective.Equal(ri(-2)) {
		t.Fatalf("objective = %v, want -2", s.Objective)
	}
}

func TestDegenerateKleeMintyish(t *testing.T) {
	// A degenerate LP that cycles under naive pivoting; Bland's rule
	// must terminate. (Beale's classic cycling example.)
	m := NewModel()
	x1, x2, x3, x4 := m.Var("x1"), m.Var("x2"), m.Var("x3"), m.Var("x4")
	m.Objective(Maximize, Expr{
		{x1, rr(3, 4)}, {x2, ri(-150)}, {x3, rr(1, 50)}, {x4, ri(-6)},
	})
	m.Le("r1", Expr{{x1, rr(1, 4)}, {x2, ri(-60)}, {x3, rr(-1, 25)}, {x4, ri(9)}}, ri(0))
	m.Le("r2", Expr{{x1, rr(1, 2)}, {x2, ri(-90)}, {x3, rr(-1, 50)}, {x4, ri(3)}}, ri(0))
	m.Le("r3", Expr{{x3, ri(1)}}, ri(1))
	s := mustSolve(t, m)
	if !s.Objective.Equal(rr(1, 20)) {
		t.Fatalf("objective = %v, want 1/20", s.Objective)
	}
}

func TestRedundantEqualities(t *testing.T) {
	// x + y == 2 duplicated; redundant row must be dropped in phase 1.
	m := NewModel()
	x, y := m.Var("x"), m.Var("y")
	m.Objective(Maximize, expr(term(x, 1)))
	m.Eq("e1", expr(term(x, 1), term(y, 1)), ri(2))
	m.Eq("e2", expr(term(x, 1), term(y, 1)), ri(2))
	m.Eq("e3", expr(term(x, 2), term(y, 2)), ri(4))
	s := mustSolve(t, m)
	if !s.Objective.Equal(ri(2)) {
		t.Fatalf("objective = %v, want 2", s.Objective)
	}
}

func TestExactRationalAnswer(t *testing.T) {
	// max x s.t. 3x <= 1 => exactly 1/3 (a float solver would give
	// 0.3333...; exactness is the point of this solver).
	m := NewModel()
	x := m.Var("x")
	m.Objective(Maximize, expr(term(x, 3)))
	m.Le("c", expr(term(x, 7)), rr(1, 3))
	s := mustSolve(t, m)
	if !s.Objective.Equal(rr(1, 7)) {
		t.Fatalf("objective = %v, want 1/7", s.Objective)
	}
	if !s.Value(x).Equal(rr(1, 21)) {
		t.Fatalf("x = %v, want 1/21", s.Value(x))
	}
}

// randomLEModel builds a random feasible bounded LP: max c.x subject
// to Ax <= b with b >= 0 (so x = 0 is feasible) plus a box to keep it
// bounded.
func randomLEModel(rng *rand.Rand, nVars, nCons int) *Model {
	m := NewModel()
	vars := make([]Var, nVars)
	for i := range vars {
		vars[i] = m.VarRange("x", ri(int64(rng.Intn(8)+1)))
	}
	obj := Expr{}
	for _, v := range vars {
		obj = append(obj, Term{v, ri(int64(rng.Intn(11) - 3))})
	}
	m.Objective(Maximize, obj)
	for c := 0; c < nCons; c++ {
		e := Expr{}
		for _, v := range vars {
			if rng.Intn(2) == 0 {
				e = append(e, Term{v, rr(int64(rng.Intn(9)-4), int64(rng.Intn(3)+1))})
			}
		}
		if len(e) == 0 {
			continue
		}
		m.Le("r", e, ri(int64(rng.Intn(20))))
	}
	return m
}

func TestStrongDualityOnRandomLPs(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 60; trial++ {
		m := randomLEModel(rng, 2+rng.Intn(5), 1+rng.Intn(5))
		s, err := m.Solve()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if s.Status != Optimal {
			t.Fatalf("trial %d: status %v (x=0 should be feasible, box bounds)", trial, s.Status)
		}
		if err := m.CheckFeasible(s.Values()); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// Weak duality sanity via complementary slackness on LE rows:
		// y_i >= 0 and y_i * slack_i == 0.
		for i, c := range m.cons {
			y := s.Dual(i)
			if y.Sign() < 0 {
				t.Fatalf("trial %d: dual of LE row %d negative: %v", trial, i, y)
			}
			slack := c.RHS.Sub(evalExpr(c.Expr, s.Values()))
			if !y.Mul(slack).IsZero() {
				t.Fatalf("trial %d: complementary slackness violated: y=%v slack=%v", trial, y, slack)
			}
		}
	}
}

func TestRandomLPsExactVsFloat(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 40; trial++ {
		m := randomLEModel(rng, 2+rng.Intn(6), 1+rng.Intn(6))
		se, err := m.Solve()
		if err != nil {
			t.Fatal(err)
		}
		sf, err := m.SolveFloat()
		if err != nil {
			t.Fatal(err)
		}
		if se.Status != sf.Status {
			t.Fatalf("trial %d: exact=%v float=%v", trial, se.Status, sf.Status)
		}
		if se.Status == Optimal {
			d := se.Objective.Float64() - sf.Objective
			if d > 1e-6 || d < -1e-6 {
				t.Fatalf("trial %d: exact obj %v vs float %v", trial, se.Objective, sf.Objective)
			}
		}
	}
}

func TestRandomOptimalityBySampling(t *testing.T) {
	// Property: no random feasible point beats the reported optimum.
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 25; trial++ {
		m := randomLEModel(rng, 3, 4)
		s, err := m.Solve()
		if err != nil || s.Status != Optimal {
			t.Fatalf("trial %d: %v %v", trial, err, s)
		}
		for probe := 0; probe < 200; probe++ {
			x := make([]rat.Rat, m.NumVars())
			for i := range x {
				x[i] = rr(int64(rng.Intn(16)), int64(rng.Intn(4)+1))
			}
			if m.CheckFeasible(x) != nil {
				continue
			}
			if m.ObjectiveAt(x).Cmp(s.Objective) > 0 {
				t.Fatalf("trial %d: sampled point beats optimum: %v > %v",
					trial, m.ObjectiveAt(x), s.Objective)
			}
		}
	}
}

func TestFloatInfeasibleUnbounded(t *testing.T) {
	m := NewModel()
	x := m.Var("x")
	m.Objective(Maximize, expr(term(x, 1)))
	m.Ge("lo", expr(term(x, 1)), ri(5))
	m.Le("hi", expr(term(x, 1)), ri(3))
	s, err := m.SolveFloat()
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Infeasible {
		t.Fatalf("float status = %v", s.Status)
	}

	m2 := NewModel()
	y := m2.Var("y")
	m2.Objective(Maximize, expr(term(y, 1)))
	s2, err := m2.SolveFloat()
	if err != nil {
		t.Fatal(err)
	}
	if s2.Status != Unbounded {
		t.Fatalf("float status = %v, want unbounded", s2.Status)
	}
}

func TestModelString(t *testing.T) {
	m := NewModel()
	x := m.Var("x")
	m.Objective(Maximize, expr(term(x, 1)))
	m.Le("cap", expr(term(x, 1)), ri(3))
	if got := m.String(); got == "" {
		t.Fatal("empty String()")
	}
}

func TestObjCoefAccumulates(t *testing.T) {
	m := NewModel()
	x := m.Var("x")
	m.ObjCoef(x, ri(2))
	m.ObjCoef(x, ri(3))
	m.Le("cap", expr(term(x, 1)), ri(2))
	s := mustSolve(t, m)
	if !s.Objective.Equal(ri(10)) {
		t.Fatalf("objective = %v, want 10", s.Objective)
	}
}

func BenchmarkExactSimplexSmall(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	m := randomLEModel(rng, 8, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Solve(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFloatSimplexSmall(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	m := randomLEModel(rng, 8, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.SolveFloat(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExactSimplexMedium(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	m := randomLEModel(rng, 30, 40)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Solve(); err != nil {
			b.Fatal(err)
		}
	}
}
