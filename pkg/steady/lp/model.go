// Package lp implements the linear-programming engine of the
// steady-state scheduling stack: a model builder, an exact sparse
// revised simplex over rationals with warm-started re-solves, and a
// float64 simplex used for scale/ablation comparisons.
//
// The steady-state framework of Beaumont et al. requires *rational*
// optima — the schedule period is the lcm of the solution's
// denominators — which is why the exact solver is the primary engine.
// Its design:
//
//   - constraints are stored column-wise and sparse; the node-edge
//     incidence LPs the paper produces have a handful of nonzeros per
//     column, and the solver's per-iteration cost follows that count,
//     not rows x columns;
//   - the basis is maintained in product form (a file of eta vectors
//     over exact rationals, periodically reinverted), so an iteration
//     is two sparse triangular passes (BTRAN/FTRAN) instead of a
//     dense tableau update;
//   - pricing is caller-configurable (Options.Pricing): Bland's rule
//     by default — it reproduces the historical engine's certified
//     optima bit-for-bit — or Dantzig's rule with an automatic
//     switch to Bland's anti-cycling rule after a run of degenerate
//     pivots (Options.BlandAfter); the pivot budget is configurable
//     too (Options.PivotBudget);
//   - a solved Model yields its optimal Basis, and a structurally
//     identical model can re-solve from it with SolveFrom — the
//     sweep/adaptive workloads of pkg/steady/batch and pkg/steady/sim
//     re-solve families of nearly identical LPs, and a warm basis
//     turns those re-solves into a handful of pivots.
//
// Build a Model with NewModel, declare variables with Var/VarRange
// (variables are non-negative by default; SetFree lifts that),
// constraints with Le/Ge/Eq, and call Solve (or SolveOpts/SolveFrom)
// for an exact Solution, or SolveFloat for the float64 comparison
// solver. See ExampleModel for a complete program. internal/core
// builds the paper's LPs directly on this package; applications
// should normally consume them through the pkg/steady facade instead.
package lp

import (
	"fmt"

	"repro/pkg/steady/rat"
)

// Sense selects the optimization direction.
type Sense int

const (
	Maximize Sense = iota
	Minimize
)

// Op is a constraint comparison operator.
type Op int

const (
	LE Op = iota // <=
	GE           // >=
	EQ           // ==
)

func (o Op) String() string {
	switch o {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "=="
	}
	return "?"
}

// Var identifies a decision variable within its Model.
type Var int

// Term is coefficient times variable.
type Term struct {
	Var  Var
	Coef rat.Rat
}

// Expr is a linear expression Σ coef·var.
type Expr []Term

// Plus appends a term and returns the extended expression.
func (e Expr) Plus(v Var, c rat.Rat) Expr { return append(e, Term{v, c}) }

// PlusInt appends a term with an integer coefficient.
func (e Expr) PlusInt(v Var, c int64) Expr { return e.Plus(v, rat.FromInt(c)) }

// Constraint is expr op rhs.
type Constraint struct {
	Name string
	Expr Expr
	Op   Op
	RHS  rat.Rat
}

// Model is a linear program under construction. All variables are
// non-negative unless marked free; upper bounds become rows.
type Model struct {
	names []string
	free  []bool
	upper []rat.Rat
	hasUp []bool

	obj   map[Var]rat.Rat
	sense Sense
	cons  []Constraint
}

// NewModel returns an empty maximization model.
func NewModel() *Model {
	return &Model{obj: make(map[Var]rat.Rat)}
}

// Var adds a non-negative variable and returns its handle.
func (m *Model) Var(name string) Var {
	m.names = append(m.names, name)
	m.free = append(m.free, false)
	m.upper = append(m.upper, rat.Zero())
	m.hasUp = append(m.hasUp, false)
	return Var(len(m.names) - 1)
}

// VarRange adds a variable with 0 <= x <= up.
func (m *Model) VarRange(name string, up rat.Rat) Var {
	v := m.Var(name)
	m.SetUpper(v, up)
	return v
}

// SetUpper sets (or replaces) an upper bound x <= up.
func (m *Model) SetUpper(v Var, up rat.Rat) {
	m.upper[v] = up
	m.hasUp[v] = true
}

// SetFree marks a variable as unrestricted in sign.
func (m *Model) SetFree(v Var) { m.free[v] = true }

// Name returns the variable's name.
func (m *Model) Name(v Var) string { return m.names[v] }

// NumVars returns the number of declared variables.
func (m *Model) NumVars() int { return len(m.names) }

// NumCons returns the number of added constraints.
func (m *Model) NumCons() int { return len(m.cons) }

// Objective sets the objective sense and expression (replacing any
// previous objective).
func (m *Model) Objective(sense Sense, e Expr) {
	m.sense = sense
	m.obj = make(map[Var]rat.Rat, len(e))
	for _, t := range e {
		m.obj[t.Var] = m.obj[t.Var].Add(t.Coef)
	}
}

// ObjCoef adds c to the objective coefficient of v.
func (m *Model) ObjCoef(v Var, c rat.Rat) {
	m.obj[v] = m.obj[v].Add(c)
}

// Constrain adds expr op rhs with a diagnostic name.
func (m *Model) Constrain(name string, e Expr, op Op, rhs rat.Rat) {
	m.cons = append(m.cons, Constraint{Name: name, Expr: e, Op: op, RHS: rhs})
}

// Le adds expr <= rhs.
func (m *Model) Le(name string, e Expr, rhs rat.Rat) { m.Constrain(name, e, LE, rhs) }

// Ge adds expr >= rhs.
func (m *Model) Ge(name string, e Expr, rhs rat.Rat) { m.Constrain(name, e, GE, rhs) }

// Eq adds expr == rhs.
func (m *Model) Eq(name string, e Expr, rhs rat.Rat) { m.Constrain(name, e, EQ, rhs) }

// Status describes the outcome of a solve.
type Status int

const (
	Optimal Status = iota
	Infeasible
	Unbounded
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	}
	return "unknown"
}

// SolveInfo reports how a solve went: how many pivots each phase
// took, whether the anti-cycling fallback engaged, and whether the
// solve started from a warm basis. It is carried up through
// internal/core's result types to pkg/steady.Result and the
// /v1/stats counters of pkg/steady/server.
type SolveInfo struct {
	// Pivots is the total pivot count across all phases (including
	// dual-simplex repair pivots of a warm start).
	Pivots int
	// Phase1Pivots is the share of Pivots spent finding a first
	// feasible basis (always 0 for an accepted warm start).
	Phase1Pivots int
	// BlandPivots counts pivots taken under the Bland anti-cycling
	// fallback (see Options.BlandAfter).
	BlandPivots int
	// WarmStarted reports that Options.WarmBasis was accepted and the
	// solve proceeded from it. When a warm basis is rejected (shape
	// mismatch, singular, or too infeasible to repair) the solver
	// falls back to a cold solve and WarmStarted stays false.
	WarmStarted bool
	// FloatPivots is the number of float64 pivots the float-first
	// search phase took (0 unless Options.FloatFirst ran; see the
	// package comment of floatfirst.go). Float pivots are cheap —
	// Pivots counts only exact rational pivots.
	FloatPivots int
	// RepairPivots is the number of exact pivots spent repairing the
	// float-optimal basis during certification (a subset of Pivots; 0
	// when the float basis was exactly optimal as installed).
	RepairPivots int
	// CertifiedCold reports that a float-first solve could not certify
	// the float basis (float failure, singular install, or repair
	// budget exhausted) and the returned solution came from the
	// pure-exact fallback instead. It is always false when FloatFirst
	// was not requested.
	CertifiedCold bool
	// Refactorizations counts exact basis refactorizations: the eta
	// file rebuilt from scratch, either periodically (every
	// reinvertEvery pivots) or to install a warm/float basis. Float
	// refactorizations inside the float64 search engine are not
	// included — like FloatPivots, they are cheap.
	Refactorizations int
}

// Solution is the result of an exact solve.
type Solution struct {
	Status    Status
	Objective rat.Rat
	// Info reports pivot counts and warm-start outcome.
	Info   SolveInfo
	values []rat.Rat
	duals  []rat.Rat // one per constraint, sign convention of the LE/GE/EQ row
	basis  *Basis    // optimal basis, for warm-started re-solves
	model  *Model
}

// Value returns the optimal value of v.
func (s *Solution) Value(v Var) rat.Rat { return s.values[v] }

// Values returns all variable values, indexed by Var.
func (s *Solution) Values() []rat.Rat { return s.values }

// Dual returns the dual multiplier of constraint i (in the order the
// constraints were added).
func (s *Solution) Dual(i int) rat.Rat { return s.duals[i] }

// Basis returns the optimal basis, suitable for warm-starting a
// structurally identical model via SolveFrom. It is nil unless the
// solution is Optimal. The returned value is immutable and safe to
// share across goroutines.
func (s *Solution) Basis() *Basis { return s.basis }

// evalExpr computes expr at the given point.
func evalExpr(e Expr, x []rat.Rat) rat.Rat {
	v := rat.Zero()
	for _, t := range e {
		v = v.Add(t.Coef.Mul(x[t.Var]))
	}
	return v
}

// CheckFeasible verifies that x satisfies every constraint and bound
// of the model exactly; it returns a descriptive error otherwise.
func (m *Model) CheckFeasible(x []rat.Rat) error {
	if len(x) != len(m.names) {
		return fmt.Errorf("lp: point has %d values, model has %d vars", len(x), len(m.names))
	}
	for v := range m.names {
		if !m.free[v] && x[v].Sign() < 0 {
			return fmt.Errorf("lp: var %s = %v violates x >= 0", m.names[v], x[v])
		}
		if m.hasUp[v] && x[v].Cmp(m.upper[v]) > 0 {
			return fmt.Errorf("lp: var %s = %v violates upper bound %v", m.names[v], x[v], m.upper[v])
		}
	}
	for i, c := range m.cons {
		lhs := evalExpr(c.Expr, x)
		ok := false
		switch c.Op {
		case LE:
			ok = lhs.Cmp(c.RHS) <= 0
		case GE:
			ok = lhs.Cmp(c.RHS) >= 0
		case EQ:
			ok = lhs.Equal(c.RHS)
		}
		if !ok {
			return fmt.Errorf("lp: constraint %d (%s): %v %s %v violated",
				i, c.Name, lhs, c.Op, c.RHS)
		}
	}
	return nil
}

// ObjectiveAt evaluates the objective at x.
func (m *Model) ObjectiveAt(x []rat.Rat) rat.Rat {
	v := rat.Zero()
	for vr, c := range m.obj {
		v = v.Add(c.Mul(x[vr]))
	}
	return v
}

// String renders the model in an LP-file-like format for debugging.
func (m *Model) String() string {
	s := "max "
	if m.sense == Minimize {
		s = "min "
	}
	for v, c := range m.obj {
		s += fmt.Sprintf("%v*%s ", c, m.names[v])
	}
	s += "\n"
	for _, c := range m.cons {
		s += "  " + c.Name + ": "
		for _, t := range c.Expr {
			s += fmt.Sprintf("%v*%s ", t.Coef, m.names[t.Var])
		}
		s += fmt.Sprintf("%s %v\n", c.Op, c.RHS)
	}
	return s
}
