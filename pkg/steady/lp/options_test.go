package lp

import (
	"errors"
	"testing"
)

// bealeModel is Beale's classic cycling LP: under Dantzig pricing
// with the textbook tie-breaks the simplex revisits its starting
// basis forever; Bland's rule (or the automatic fallback) terminates
// at the optimum 1/20.
func bealeModel() *Model {
	m := NewModel()
	x1, x2, x3, x4 := m.Var("x1"), m.Var("x2"), m.Var("x3"), m.Var("x4")
	m.Objective(Maximize, Expr{
		{x1, rr(3, 4)}, {x2, ri(-150)}, {x3, rr(1, 50)}, {x4, ri(-6)},
	})
	m.Le("r1", Expr{{x1, rr(1, 4)}, {x2, ri(-60)}, {x3, rr(-1, 25)}, {x4, ri(9)}}, ri(0))
	m.Le("r2", Expr{{x1, rr(1, 2)}, {x2, ri(-90)}, {x3, rr(-1, 50)}, {x4, ri(3)}}, ri(0))
	m.Le("r3", Expr{{x3, ri(1)}}, ri(1))
	return m
}

// TestBlandFallbackOnDegenerateLP is the regression test for the
// configurable pricing rule: on Beale's degenerate LP, Dantzig
// pricing with the fallback disabled cycles into the pivot budget,
// while the default fallback hands the same solve to Bland's rule
// after the degeneracy stall and reaches the exact optimum.
func TestBlandFallbackOnDegenerateLP(t *testing.T) {
	// Fallback disabled: the cycle burns the whole (tightened) budget.
	_, err := bealeModel().SolveOpts(&Options{
		Pricing:     PricingDantzig,
		BlandAfter:  -1,
		PivotBudget: 1000,
	})
	if !errors.Is(err, ErrIterationLimit) {
		t.Fatalf("Dantzig without fallback: got err=%v, want ErrIterationLimit (the LP cycles)", err)
	}

	// Default fallback: same pricing, solve succeeds.
	s, err := bealeModel().SolveOpts(&Options{Pricing: PricingDantzig})
	if err != nil {
		t.Fatalf("Dantzig with fallback: %v", err)
	}
	if s.Status != Optimal || !s.Objective.Equal(rr(1, 20)) {
		t.Fatalf("status %v objective %v, want optimal 1/20", s.Status, s.Objective)
	}
	if s.Info.BlandPivots == 0 {
		t.Fatalf("fallback never engaged (BlandPivots = 0) — the degeneracy stall was not detected")
	}
	if s.Info.Pivots > DefaultPivotFactor {
		t.Fatalf("took %d pivots on a 3-row LP", s.Info.Pivots)
	}
}

// TestPivotBudgetConfigurable checks that Options.PivotBudget
// replaces the historical hard-coded budget.
func TestPivotBudgetConfigurable(t *testing.T) {
	build := func() *Model {
		m := NewModel()
		x, y := m.Var("x"), m.Var("y")
		m.Objective(Maximize, expr(term(x, 3), term(y, 5)))
		m.Le("c1", expr(term(x, 1)), ri(4))
		m.Le("c2", expr(term(y, 2)), ri(12))
		m.Le("c3", expr(term(x, 3), term(y, 2)), ri(18))
		return m
	}
	if _, err := build().SolveOpts(&Options{PivotBudget: 1}); !errors.Is(err, ErrIterationLimit) {
		t.Fatalf("budget 1: got err=%v, want ErrIterationLimit", err)
	}
	s, err := build().SolveOpts(&Options{PivotBudget: 100})
	if err != nil || s.Status != Optimal || !s.Objective.Equal(ri(36)) {
		t.Fatalf("budget 100: got %v/%v, want optimal 36", s, err)
	}
}

// TestPricingRulesAgreeOnObjective: both pricing rules must reach the
// same optimal value (the vertex may differ when the optimum is not
// unique, the objective never does).
func TestPricingRulesAgreeOnObjective(t *testing.T) {
	for trial := int64(0); trial < 20; trial++ {
		m1 := randomSeededLEModel(trial, 0)
		m2 := randomSeededLEModel(trial, 0)
		b, err := m1.SolveOpts(&Options{Pricing: PricingBland})
		if err != nil {
			t.Fatal(err)
		}
		d, err := m2.SolveOpts(&Options{Pricing: PricingDantzig})
		if err != nil {
			t.Fatal(err)
		}
		if b.Status != d.Status {
			t.Fatalf("trial %d: bland %v vs dantzig %v", trial, b.Status, d.Status)
		}
		if b.Status == Optimal && !b.Objective.Equal(d.Objective) {
			t.Fatalf("trial %d: bland obj %v != dantzig obj %v", trial, b.Objective, d.Objective)
		}
	}
}
