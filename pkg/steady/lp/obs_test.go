package lp

import (
	"testing"

	"repro/pkg/steady/obs"
)

// obsTestModel is the TestSimpleMax program: max 3x+5y subject to
// x<=4, 2y<=12, 3x+2y<=18 (optimum 36 at (2,6)).
func obsTestModel() *Model {
	m := NewModel()
	x, y := m.Var("x"), m.Var("y")
	m.Objective(Maximize, expr(term(x, 3), term(y, 5)))
	m.Le("c1", expr(term(x, 1)), ri(4))
	m.Le("c2", expr(term(y, 2)), ri(12))
	m.Le("c3", expr(term(x, 3), term(y, 2)), ri(18))
	return m
}

func TestSolveFlushesMetrics(t *testing.T) {
	reg := obs.New()
	m := obsTestModel()
	sol, err := m.SolveOpts(&Options{Obs: reg})
	if err != nil || sol.Status != Optimal {
		t.Fatalf("solve: %v (status %v)", err, sol.Status)
	}
	if got := reg.Counter(metricPivots, "").Value(); got != int64(sol.Info.Pivots) {
		t.Fatalf("pivots counter = %d, want %d", got, sol.Info.Pivots)
	}
	if got := reg.CounterVec(metricSolves, "", "path").With("cold").Value(); got != 1 {
		t.Fatalf("cold solves counter = %d, want 1", got)
	}
	spans := reg.RecentSpans()
	var sawSolve, sawPhase2 bool
	for _, sp := range spans {
		switch sp.Stage {
		case "lp_solve":
			sawSolve = true
		case "lp_phase2":
			sawPhase2 = true
		}
	}
	if !sawSolve || !sawPhase2 {
		t.Fatalf("spans missing lifecycle stages: %+v", spans)
	}

	// Warm re-solve from the optimal basis lands on the warm path.
	if _, err := m.SolveOpts(&Options{Obs: reg, WarmBasis: sol.Basis()}); err != nil {
		t.Fatalf("warm solve: %v", err)
	}
	if got := reg.CounterVec(metricSolves, "", "path").With("warm").Value(); got != 1 {
		t.Fatalf("warm solves counter = %d, want 1", got)
	}

	// Float-first lands on the float path and, like every solve of
	// this model, records the same exact objective.
	fsol, err := obsTestModel().SolveOpts(&Options{Obs: reg, FloatFirst: true})
	if err != nil || fsol.Status != Optimal {
		t.Fatalf("float solve: %v (status %v)", err, fsol.Status)
	}
	if !fsol.Objective.Equal(sol.Objective) {
		t.Fatalf("float-first objective = %v, want %v", fsol.Objective, sol.Objective)
	}
	wantPath := "float"
	if fsol.Info.CertifiedCold {
		wantPath = "cold"
	}
	if got := reg.CounterVec(metricSolves, "", "path").With(wantPath).Value(); got < 1 {
		t.Fatalf("%s solves counter = %d, want >= 1", wantPath, got)
	}
}

// TestMetricsDoNotPerturbSolve proves observation is one-way: the
// same model solved with and without a registry returns identical
// pivots, basis, and values.
func TestMetricsDoNotPerturbSolve(t *testing.T) {
	plain, err := obsTestModel().SolveOpts(&Options{FloatFirst: true})
	if err != nil {
		t.Fatal(err)
	}
	observed, err := obsTestModel().SolveOpts(&Options{FloatFirst: true, Obs: obs.New()})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Info != observed.Info {
		t.Fatalf("SolveInfo diverged: %+v vs %+v", plain.Info, observed.Info)
	}
	if !plain.Objective.Equal(observed.Objective) {
		t.Fatalf("objective diverged: %v vs %v", plain.Objective, observed.Objective)
	}
}

func TestRefactorizationsCounted(t *testing.T) {
	// A warm start installs a basis, which refactors at least once.
	sol := mustSolve(t, obsTestModel())
	m := obsTestModel()
	reg := obs.New()
	wsol, err := m.SolveOpts(&Options{Obs: reg, WarmBasis: sol.Basis()})
	if err != nil {
		t.Fatal(err)
	}
	if !wsol.Info.WarmStarted {
		t.Fatalf("warm basis rejected unexpectedly: %+v", wsol.Info)
	}
	if wsol.Info.Refactorizations < 1 {
		t.Fatalf("Refactorizations = %d, want >= 1", wsol.Info.Refactorizations)
	}
	if got := reg.Counter(metricRefactor, "").Value(); got != int64(wsol.Info.Refactorizations) {
		t.Fatalf("refactorizations counter = %d, want %d", got, wsol.Info.Refactorizations)
	}
}
