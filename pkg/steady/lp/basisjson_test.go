package lp

import (
	"encoding/json"
	"testing"
)

// TestBasisJSONRoundTrip: a basis survives the wire byte-for-byte in
// effect — the decoded basis warm-starts the identical model in zero
// pivots and reproduces the identical solution, exactly like the
// in-memory basis it was encoded from. This is the property the
// cluster's warm-basis shipping rests on.
func TestBasisJSONRoundTrip(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		m := randomSeededLEModel(seed, 0)
		cold, err := m.Solve()
		if err != nil || cold.Status != Optimal {
			t.Fatalf("seed %d: cold %v %v", seed, cold, err)
		}
		raw, err := json.Marshal(cold.Basis())
		if err != nil {
			t.Fatalf("seed %d: marshal: %v", seed, err)
		}
		var shipped Basis
		if err := json.Unmarshal(raw, &shipped); err != nil {
			t.Fatalf("seed %d: unmarshal: %v", seed, err)
		}
		if shipped.Len() != cold.Basis().Len() {
			t.Fatalf("seed %d: round trip lost entries: %d != %d", seed, shipped.Len(), cold.Basis().Len())
		}
		// Re-encoding the decoded basis must reproduce the wire bytes:
		// the encoding is canonical, not merely invertible.
		raw2, err := json.Marshal(&shipped)
		if err != nil {
			t.Fatalf("seed %d: re-marshal: %v", seed, err)
		}
		if string(raw) != string(raw2) {
			t.Fatalf("seed %d: encoding not canonical:\n%s\n%s", seed, raw, raw2)
		}
		warm, err := randomSeededLEModel(seed, 0).SolveFrom(&shipped)
		if err != nil || warm.Status != Optimal {
			t.Fatalf("seed %d: warm from shipped basis: %v %v", seed, warm, err)
		}
		if !warm.Info.WarmStarted || warm.Info.Pivots != 0 {
			t.Fatalf("seed %d: shipped basis did not warm-start (warm=%v pivots=%d)",
				seed, warm.Info.WarmStarted, warm.Info.Pivots)
		}
		if !warm.Objective.Equal(cold.Objective) {
			t.Fatalf("seed %d: warm obj %v != cold obj %v", seed, warm.Objective, cold.Objective)
		}
		for v := 0; v < m.NumVars(); v++ {
			if !warm.Value(Var(v)).Equal(cold.Value(Var(v))) {
				t.Fatalf("seed %d: var %d differs after round trip", seed, v)
			}
		}
	}
}

// TestBasisJSONNil: a nil basis is JSON null both ways.
func TestBasisJSONNil(t *testing.T) {
	var b *Basis
	raw, err := json.Marshal(b)
	if err != nil || string(raw) != "null" {
		t.Fatalf("nil basis marshaled to %q, %v", raw, err)
	}
}

// TestBasisJSONHostile: malformed wire bases are rejected with an
// error, never decoded into something SolveFrom could trip over.
func TestBasisJSONHostile(t *testing.T) {
	for _, bad := range []string{
		`{"vars":-1,"cons":2,"entries":[]}`,
		`{"vars":3,"cons":-2,"entries":[]}`,
		`{"vars":3,"cons":2,"entries":[{"k":"var","i":-1}]}`,
		`{"vars":3,"cons":2,"entries":[{"k":"artificial","i":0}]}`,
		`{"vars":3,"cons":2,"entries":[{"k":"","i":0}]}`,
		`[1,2,3]`,
	} {
		var b Basis
		if err := json.Unmarshal([]byte(bad), &b); err == nil {
			t.Errorf("accepted hostile basis %s", bad)
		}
	}
	// A basis that parses but does not fit the model is discarded by
	// the warm-start path: the solve runs cold, it does not fail.
	var misfit Basis
	if err := json.Unmarshal([]byte(`{"vars":999,"cons":999,"entries":[{"k":"var","i":998}]}`), &misfit); err != nil {
		t.Fatalf("well-formed misfit rejected: %v", err)
	}
	m := randomSeededLEModel(1, 0)
	sol, err := m.SolveFrom(&misfit)
	if err != nil || sol.Status != Optimal {
		t.Fatalf("misfit basis broke the solve: %v %v", sol, err)
	}
	if sol.Info.WarmStarted {
		t.Fatal("misfit basis claims to have warm-started")
	}
}
