package lp

import (
	"errors"
	"fmt"
	"sort"

	"repro/pkg/steady/rat"
)

// ErrIterationLimit is returned when the pivot budget is exhausted
// (see Options.PivotBudget). Under the default options — which keep
// the Bland anti-cycling fallback armed — this indicates a genuinely
// enormous problem rather than cycling.
var ErrIterationLimit = errors.New("lp: iteration limit exceeded")

var (
	errUnbounded   = errors.New("lp: unbounded")
	errSingular    = errors.New("lp: singular basis")
	errWarmReject  = errors.New("lp: warm basis rejected")
	errDualNoPivot = errors.New("lp: dual simplex found no entering column")
)

// reinvertEvery bounds the eta file length: after this many pivots
// since the last (re)inversion the basis is refactored from scratch,
// keeping FTRAN/BTRAN passes short and rational operands small.
const reinvertEvery = 64

// eta is one product-form factor of the basis inverse: the
// elementary matrix that differs from the identity only in column r
// (diagonal diag = 1/pivot, off-diagonals nz = -w_i/pivot).
type eta struct {
	r    int
	diag rat.Rat
	nz   []centry
}

// engine is the exact sparse revised simplex over a standardized
// model: basis inverse in product form, reduced costs priced from a
// BTRAN pass per iteration, columns touched through their sparse
// entries only.
type engine struct {
	s   *stdForm
	par params

	basis  []int // column basic at each row position
	inB    []bool
	xB     []rat.Rat // current basic values, maintained per pivot
	etas   []eta
	banned []bool
	c      []rat.Rat // current phase costs per column
	y      []rat.Rat // scratch: simplex multipliers c_B B^-1
	w      []rat.Rat // scratch: FTRANed entering column
	rho    []rat.Rat // scratch: BTRANed unit row (dual pricing)

	info    SolveInfo
	degen   int  // consecutive degenerate pivots
	blandOn bool // Bland fallback currently engaged
}

// Solve runs the exact revised simplex with the default options and
// returns an exact rational optimum (or Infeasible/Unbounded status).
func (m *Model) Solve() (*Solution, error) { return m.SolveOpts(nil) }

// SolveFrom is Solve warm-started from the optimal basis of a
// structurally identical model (see Basis). A basis that does not fit
// falls back to a cold solve.
func (m *Model) SolveFrom(b *Basis) (*Solution, error) {
	return m.SolveOpts(&Options{WarmBasis: b})
}

// SolveOpts runs the exact revised simplex under explicit options.
// A nil opts is Solve.
func (m *Model) SolveOpts(opts *Options) (*Solution, error) {
	if opts == nil || opts.Obs == nil {
		return m.solveDispatch(opts)
	}
	span := opts.Obs.StartSpan("lp_solve")
	sol, err := m.solveDispatch(opts)
	span.End()
	flushSolveMetrics(opts, sol, err)
	return sol, err
}

// solveDispatch picks the warm / float-first / cold path.
func (m *Model) solveDispatch(opts *Options) (*Solution, error) {
	if opts != nil && opts.WarmBasis != nil {
		sol, err := m.solveWarm(opts)
		if err == nil {
			return sol, nil
		}
		if !errors.Is(err, errWarmReject) {
			return nil, err
		}
		// Warm basis rejected: solve cold (float-first when asked).
	}
	if opts != nil && opts.FloatFirst {
		return m.solveFloatFirst(opts)
	}
	return m.solveCold(opts)
}

func newEngine(s *stdForm, par params) *engine {
	return &engine{
		s:      s,
		par:    par,
		inB:    make([]bool, len(s.cols)),
		banned: make([]bool, len(s.cols)),
		c:      make([]rat.Rat, len(s.cols)),
	}
}

// solveCold runs the classic two-phase simplex from the all-logical
// starting basis.
func (m *Model) solveCold(opts *Options) (*Solution, error) {
	s := m.standardize()
	e := newEngine(s, m.resolveParams(opts, len(s.rows), len(s.cols)))
	e.basis = s.identityBasis()
	for _, j := range e.basis {
		e.inB[j] = true
	}
	e.xB = append([]rat.Rat(nil), s.b...)

	hasArt := false
	for j := range s.cols {
		if s.cols[j].kind == colArtificial {
			hasArt = true
			break
		}
	}
	reg := obsOf(opts)
	if hasArt {
		// Phase 1: maximize -(sum of artificials).
		sp := reg.StartSpan("lp_phase1")
		e.setPhase1Costs()
		err := e.primal()
		sp.End()
		if err != nil {
			if errors.Is(err, errUnbounded) {
				return nil, fmt.Errorf("lp: phase 1 unbounded (internal error)")
			}
			return nil, fmt.Errorf("phase 1: %w", err)
		}
		art := rat.Zero()
		for i, bj := range e.basis {
			if s.cols[bj].kind == colArtificial {
				art = art.Add(e.xB[i])
			}
		}
		if !art.IsZero() {
			return &Solution{Status: Infeasible, Info: e.info, model: m}, nil
		}
		e.info.Phase1Pivots = e.info.Pivots
		if err := e.banArtificials(); err != nil {
			return nil, err
		}
	}

	e.setPhase2Costs()
	sp := reg.StartSpan("lp_phase2")
	err := e.primal()
	sp.End()
	if err != nil {
		if errors.Is(err, errUnbounded) {
			return &Solution{Status: Unbounded, Info: e.info, model: m}, nil
		}
		return nil, fmt.Errorf("phase 2: %w", err)
	}
	return e.extract()
}

// solveWarm installs the warm basis and reoptimizes: straight to
// primal phase 2 when the basis is still primal feasible, dual
// simplex repair when it is dual feasible, errWarmReject (cold
// fallback) otherwise.
func (m *Model) solveWarm(opts *Options) (*Solution, error) {
	sp := obsOf(opts).StartSpan("lp_warm")
	defer sp.End()
	s := m.standardize()
	colIdx, ok := mapBasis(s, opts.WarmBasis)
	if !ok {
		return nil, errWarmReject
	}
	e := newEngine(s, m.resolveParams(opts, len(s.rows), len(s.cols)))
	// Artificials exist only as padding for rows the warm basis does
	// not cover; they are banned from entering throughout.
	for j := range s.cols {
		if s.cols[j].kind == colArtificial {
			e.banned[j] = true
		}
	}
	if err := e.installBasis(colIdx); err != nil {
		return nil, errWarmReject
	}
	e.recomputeXB()
	e.setPhase2Costs()
	e.info.WarmStarted = true

	// Any reoptimization failure that is not a definitive status —
	// pivot budget exhausted mid-repair, dual simplex out of entering
	// columns — means the warm basis was a bad starting point, not
	// that the LP is unsolvable: reject it and let the cold two-phase
	// solve make the authoritative call (the documented contract of
	// Options.WarmBasis).
	if e.primalFeasible() {
		if err := e.primal(); err != nil {
			if errors.Is(err, errUnbounded) {
				return &Solution{Status: Unbounded, Info: e.info, model: m}, nil
			}
			return nil, errWarmReject
		}
	} else {
		if !e.dualFeasible() {
			return nil, errWarmReject
		}
		if err := e.dual(); err != nil {
			return nil, errWarmReject
		}
		if err := e.primal(); err != nil { // usually 0 iterations
			if errors.Is(err, errUnbounded) {
				return &Solution{Status: Unbounded, Info: e.info, model: m}, nil
			}
			return nil, errWarmReject
		}
	}

	// A padding artificial that settled at a nonzero value means the
	// warm path solved a restriction that is not the real LP.
	for i, bj := range e.basis {
		if s.cols[bj].kind == colArtificial && !e.xB[i].IsZero() {
			return nil, errWarmReject
		}
	}
	return e.extract()
}

// installBasis factors the given columns as the starting basis
// (sparser columns first, for shorter etas), padding rows the basis
// does not cover with their own logical column.
func (e *engine) installBasis(colIdx []int) error {
	e.info.Refactorizations++
	mRows := len(e.s.rows)
	order := append([]int(nil), colIdx...)
	sort.Slice(order, func(a, b int) bool {
		na, nb := len(e.s.cols[order[a]].nz), len(e.s.cols[order[b]].nz)
		if na != nb {
			return na < nb
		}
		return order[a] < order[b]
	})
	assigned := make([]bool, mRows)
	e.basis = make([]int, mRows)
	e.etas = e.etas[:0]
	place := func(j int, want int) error {
		w := e.colFtran(j)
		r := -1
		if want >= 0 {
			if !w[want].IsZero() {
				r = want
			}
		} else {
			for i := 0; i < mRows; i++ {
				if !assigned[i] && !w[i].IsZero() {
					r = i
					break
				}
			}
		}
		if r < 0 || assigned[r] {
			return errSingular
		}
		e.pushEta(r, w)
		assigned[r] = true
		e.basis[r] = j
		e.inB[j] = true
		return nil
	}
	for _, j := range order {
		if err := place(j, -1); err != nil {
			return err
		}
	}
	pad := e.s.identityBasis()
	for r := 0; r < mRows; r++ {
		if assigned[r] {
			continue
		}
		if e.inB[pad[r]] {
			return errSingular
		}
		if err := place(pad[r], r); err != nil {
			return err
		}
	}
	return nil
}

// --- simplex iterations ----------------------------------------------

// primal runs revised primal simplex iterations until optimality
// (no improving column) or unboundedness.
func (e *engine) primal() error {
	for {
		enter := e.price()
		if enter < 0 {
			return nil
		}
		w := e.colFtran(enter)
		leave := e.ratioTest(w)
		if leave < 0 {
			return errUnbounded
		}
		if e.info.Pivots >= e.par.budget {
			return ErrIterationLimit
		}
		if err := e.pivot(leave, enter, w); err != nil {
			return err
		}
	}
}

// dual runs revised dual simplex iterations from a dual-feasible
// basis until primal feasibility.
func (e *engine) dual() error {
	for {
		// Leaving: most negative basic value, ties by smallest basic
		// column index.
		r := -1
		var most rat.Rat
		for i := range e.xB {
			if e.xB[i].Sign() >= 0 {
				continue
			}
			if r < 0 || e.xB[i].Less(most) ||
				(e.xB[i].Equal(most) && e.basis[i] < e.basis[r]) {
				r, most = i, e.xB[i]
			}
		}
		if r < 0 {
			return nil
		}
		if e.info.Pivots >= e.par.budget {
			return ErrIterationLimit
		}
		// Row r of B^-1 A, priced against the exact reduced costs:
		// enter the column minimizing d_j / alpha_rj over alpha_rj < 0.
		rho := e.unitBtran(r)
		e.computeY()
		enter := -1
		var bestRatio rat.Rat
		for j := range e.s.cols {
			if e.banned[j] || e.inB[j] {
				continue
			}
			alpha := rat.Zero()
			for _, en := range e.s.cols[j].nz {
				if !rho[en.row].IsZero() {
					alpha = alpha.Add(rho[en.row].Mul(en.v))
				}
			}
			if alpha.Sign() >= 0 {
				continue
			}
			ratio := e.reducedCost(j).Div(alpha)
			if enter < 0 || ratio.Less(bestRatio) ||
				(ratio.Equal(bestRatio) && j < enter) {
				enter, bestRatio = j, ratio
			}
		}
		if enter < 0 {
			return errDualNoPivot
		}
		w := e.colFtran(enter)
		if err := e.pivot(r, enter, w); err != nil {
			return err
		}
	}
}

// price selects the entering column: nil (-1) at optimality,
// otherwise per Dantzig's rule or — when the caller asked for it or
// the degeneracy fallback engaged — Bland's rule.
func (e *engine) price() int {
	e.computeY()
	bland := e.blandOn || e.par.pricing == PricingBland
	enter := -1
	var best rat.Rat
	for j := range e.s.cols {
		if e.banned[j] || e.inB[j] {
			continue
		}
		d := e.reducedCost(j)
		if d.Sign() <= 0 {
			continue
		}
		if bland {
			return j
		}
		if enter < 0 || best.Less(d) {
			enter, best = j, d
		}
	}
	return enter
}

// ratioTest returns the leaving row for entering direction w: the
// minimum of xB_i / w_i over w_i > 0, ties by smallest basic column
// index (Bland's leaving rule, also the deterministic tie-break).
// Zero basic values short-circuit the division: their ratio is 0,
// the smallest possible, so once one is seen only the tie-break
// among zero rows matters.
func (e *engine) ratioTest(w []rat.Rat) int {
	leave := -1
	bestZero := false
	var best rat.Rat
	for i := range w {
		if w[i].Sign() <= 0 {
			continue
		}
		if e.xB[i].IsZero() {
			if !bestZero || leave < 0 || e.basis[i] < e.basis[leave] {
				leave, bestZero = i, true
			}
			continue
		}
		if bestZero {
			continue
		}
		ratio := e.xB[i].Div(w[i])
		if leave < 0 || ratio.Less(best) ||
			(ratio.Equal(best) && e.basis[i] < e.basis[leave]) {
			leave, best = i, ratio
		}
	}
	return leave
}

// pivot replaces the basic column of row r with enter, whose FTRANed
// direction is w (w[r] != 0). It updates the basic values, appends
// the eta factor, and maintains the degeneracy/fallback state.
func (e *engine) pivot(r, enter int, w []rat.Rat) error {
	if e.blandOn {
		e.info.BlandPivots++
	}
	theta := e.xB[r].Div(w[r])
	degenerate := theta.IsZero()
	if !degenerate {
		// A degenerate pivot moves nothing: the basic values are
		// unchanged (the paper's LPs have all-zero equality rows, so
		// phase 1 is almost entirely degenerate — skipping the update
		// is a measurable share of the solve).
		for i := range e.xB {
			if i == r || w[i].IsZero() {
				continue
			}
			e.xB[i] = e.xB[i].Sub(theta.Mul(w[i]))
		}
		e.xB[r] = theta
	}
	e.pushEta(r, w)
	e.inB[e.basis[r]] = false
	e.basis[r] = enter
	e.inB[enter] = true
	e.info.Pivots++
	if degenerate {
		e.degen++
		if !e.par.noFallback && e.degen >= e.par.blandAfter {
			e.blandOn = true
		}
	} else {
		e.degen = 0
		e.blandOn = false
	}
	if len(e.etas) >= reinvertEvery {
		if err := e.reinvert(); err != nil {
			return err
		}
		e.recomputeXB()
	}
	return nil
}

// banArtificials excludes artificial columns after phase 1, pivoting
// out any artificial that is still (degenerately) basic and removing
// rows that turn out to be redundant.
func (e *engine) banArtificials() error {
	for j := range e.s.cols {
		if e.s.cols[j].kind == colArtificial {
			e.banned[j] = true
		}
	}
	for i := 0; i < len(e.basis); i++ {
		if e.s.cols[e.basis[i]].kind != colArtificial {
			continue
		}
		// Row i of B^-1 A: any unbanned nonbasic column with a nonzero
		// entry can replace the artificial (xB[i] is 0, so the pivot is
		// degenerate and sign-free).
		rho := e.unitBtran(i)
		pivoted := false
		for j := range e.s.cols {
			if e.banned[j] || e.inB[j] {
				continue
			}
			alpha := rat.Zero()
			for _, en := range e.s.cols[j].nz {
				if !rho[en.row].IsZero() {
					alpha = alpha.Add(rho[en.row].Mul(en.v))
				}
			}
			if alpha.IsZero() {
				continue
			}
			w := e.colFtran(j)
			if err := e.pivot(i, j, w); err != nil {
				return err
			}
			pivoted = true
			break
		}
		if !pivoted {
			// Redundant row: remove it (and the artificial with it).
			e.dropRow(i)
			i--
		}
	}
	return nil
}

// dropRow removes row position i and refactors the shrunk basis.
func (e *engine) dropRow(i int) {
	e.inB[e.basis[i]] = false
	e.basis = append(e.basis[:i], e.basis[i+1:]...)
	e.xB = append(e.xB[:i], e.xB[i+1:]...)
	e.s.removeRow(i)
	e.etas = e.etas[:0]
	if err := e.reinvert(); err != nil {
		// The surviving basis of a dropped dependent row is
		// nonsingular by construction.
		panic(err)
	}
	e.recomputeXB()
}

// --- basis factorization ---------------------------------------------

// pushEta appends the product-form factor for a pivot at row r with
// FTRANed column w.
func (e *engine) pushEta(r int, w []rat.Rat) {
	diag := w[r].Inv()
	var nz []centry
	for i := range w {
		if i == r || w[i].IsZero() {
			continue
		}
		nz = append(nz, centry{row: i, v: w[i].Mul(diag).Neg()})
	}
	e.etas = append(e.etas, eta{r: r, diag: diag, nz: nz})
}

// ftran computes x <- B^-1 x by applying the eta file in order.
func (e *engine) ftran(x []rat.Rat) {
	for k := range e.etas {
		E := &e.etas[k]
		xr := x[E.r]
		if xr.IsZero() {
			continue
		}
		for _, en := range E.nz {
			x[en.row] = x[en.row].Add(en.v.Mul(xr))
		}
		x[E.r] = xr.Mul(E.diag)
	}
}

// btran computes y <- y B^-1 by applying the eta file in reverse.
func (e *engine) btran(y []rat.Rat) {
	for k := len(e.etas) - 1; k >= 0; k-- {
		E := &e.etas[k]
		v := y[E.r].Mul(E.diag)
		for _, en := range E.nz {
			if !y[en.row].IsZero() {
				v = v.Add(y[en.row].Mul(en.v))
			}
		}
		y[E.r] = v
	}
}

// colFtran returns B^-1 a_j in the engine's shared scratch vector
// (valid until the next colFtran call; pushEta copies what it keeps).
func (e *engine) colFtran(j int) []rat.Rat {
	mRows := len(e.s.rows)
	if cap(e.w) < mRows {
		e.w = make([]rat.Rat, mRows)
	}
	w := e.w[:mRows]
	zero := rat.Zero()
	for i := range w {
		w[i] = zero
	}
	for _, en := range e.s.cols[j].nz {
		w[en.row] = en.v
	}
	e.ftran(w)
	return w
}

// unitBtran returns e_r B^-1 (row r of the basis inverse) in a
// second shared scratch vector, independent of colFtran's.
func (e *engine) unitBtran(r int) []rat.Rat {
	mRows := len(e.s.rows)
	if cap(e.rho) < mRows {
		e.rho = make([]rat.Rat, mRows)
	}
	rho := e.rho[:mRows]
	zero := rat.Zero()
	for i := range rho {
		rho[i] = zero
	}
	rho[r] = rat.One()
	e.btran(rho)
	return rho
}

// reinvert refactors the current basis from scratch (sparser columns
// first), replacing the eta file with one factor per basic column.
// The row assignment may permute; callers must recomputeXB.
func (e *engine) reinvert() error {
	e.info.Refactorizations++
	mRows := len(e.s.rows)
	order := append([]int(nil), e.basis...)
	sort.Slice(order, func(a, b int) bool {
		na, nb := len(e.s.cols[order[a]].nz), len(e.s.cols[order[b]].nz)
		if na != nb {
			return na < nb
		}
		return order[a] < order[b]
	})
	e.etas = e.etas[:0]
	assigned := make([]bool, mRows)
	newBasis := make([]int, mRows)
	for _, j := range order {
		w := e.colFtran(j)
		r := -1
		for i := 0; i < mRows; i++ {
			if !assigned[i] && !w[i].IsZero() {
				r = i
				break
			}
		}
		if r < 0 {
			return errSingular
		}
		e.pushEta(r, w)
		assigned[r] = true
		newBasis[r] = j
	}
	e.basis = newBasis
	return nil
}

// recomputeXB refreshes the basic values from the factorization.
func (e *engine) recomputeXB() {
	e.xB = append(e.xB[:0], e.s.b...)
	e.ftran(e.xB)
}

// --- pricing helpers -------------------------------------------------

// computeY refreshes the simplex multipliers y = c_B B^-1.
func (e *engine) computeY() {
	if cap(e.y) < len(e.basis) {
		e.y = make([]rat.Rat, len(e.basis))
	}
	e.y = e.y[:len(e.basis)]
	for i, bj := range e.basis {
		e.y[i] = e.c[bj]
	}
	e.btran(e.y)
}

// reducedCost returns d_j = c_j - y . a_j for the current multipliers.
func (e *engine) reducedCost(j int) rat.Rat {
	d := e.c[j]
	for _, en := range e.s.cols[j].nz {
		if !e.y[en.row].IsZero() {
			d = d.Sub(e.y[en.row].Mul(en.v))
		}
	}
	return d
}

// setPhase1Costs installs the feasibility objective -(sum of
// artificials).
func (e *engine) setPhase1Costs() {
	for j := range e.c {
		if e.s.cols[j].kind == colArtificial {
			e.c[j] = rat.FromInt(-1)
		} else {
			e.c[j] = rat.Zero()
		}
	}
}

// setPhase2Costs installs the model objective (negated for
// minimization; split over the halves of free variables).
func (e *engine) setPhase2Costs() {
	for j := range e.c {
		col := &e.s.cols[j]
		if col.kind != colStruct {
			e.c[j] = rat.Zero()
			continue
		}
		c := e.s.m.obj[col.vr]
		if col.neg {
			c = c.Neg()
		}
		if e.s.m.sense == Minimize {
			c = c.Neg()
		}
		e.c[j] = c
	}
}

// --- solution extraction ---------------------------------------------

// extract renders the optimal engine state as a Solution: primal
// values from the basic variables, duals from the phase-2 simplex
// multipliers, and the basis in model terms for warm re-solves.
func (e *engine) extract() (*Solution, error) {
	m := e.s.m
	values := make([]rat.Rat, m.NumVars())
	for i, bj := range e.basis {
		col := &e.s.cols[bj]
		if col.kind != colStruct {
			continue
		}
		if col.neg {
			values[col.vr] = values[col.vr].Sub(e.xB[i])
		} else {
			values[col.vr] = values[col.vr].Add(e.xB[i])
		}
	}
	obj := m.ObjectiveAt(values)

	e.computeY()
	duals := make([]rat.Rat, m.NumCons())
	for i := range e.s.rows {
		r := &e.s.rows[i]
		if r.conIdx < 0 {
			continue
		}
		y := e.y[i]
		if r.flipped {
			y = y.Neg()
		}
		if m.sense == Minimize {
			y = y.Neg()
		}
		duals[r.conIdx] = y
	}

	return &Solution{
		Status:    Optimal,
		Objective: obj,
		Info:      e.info,
		values:    values,
		duals:     duals,
		basis:     encodeBasis(e.s, e.basis),
		model:     m,
	}, nil
}

// primalFeasible reports every basic value non-negative.
func (e *engine) primalFeasible() bool {
	for i := range e.xB {
		if e.xB[i].Sign() < 0 {
			return false
		}
	}
	return true
}

// dualFeasible reports every nonbasic unbanned reduced cost
// non-positive under the current costs.
func (e *engine) dualFeasible() bool {
	e.computeY()
	for j := range e.s.cols {
		if e.banned[j] || e.inB[j] {
			continue
		}
		if e.reducedCost(j).Sign() > 0 {
			return false
		}
	}
	return true
}
