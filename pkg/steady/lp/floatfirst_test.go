package lp

import (
	"testing"

	"repro/pkg/steady/rat"
)

// eps60 is 2^-60: a rational objective perturbation that vanishes when
// rounded to float64 (1 + 2^-60 == 1.0 in float64, since the mantissa
// carries 52 fraction bits). The float-first search cannot see it, so
// any optimum that depends on it MUST come from the exact
// certification — these are the adversarial models that force the
// repair path.
var eps60 = rat.New(1, 1<<60)

// solveBoth runs the same model cold and float-first and returns both
// solutions, failing the test on any solve error or status mismatch.
func solveBoth(t *testing.T, build func() *Model, opts *Options) (cold, ff *Solution) {
	t.Helper()
	var err error
	cold, err = build().Solve()
	if err != nil {
		t.Fatalf("cold solve: %v", err)
	}
	ffOpts := &Options{FloatFirst: true}
	if opts != nil {
		ffOpts = opts
		ffOpts.FloatFirst = true
	}
	ff, err = build().SolveOpts(ffOpts)
	if err != nil {
		t.Fatalf("float-first solve: %v", err)
	}
	if cold.Status != ff.Status {
		t.Fatalf("status: cold %v, float-first %v", cold.Status, ff.Status)
	}
	return cold, ff
}

// assertIdentical demands byte-identical certified output: objective,
// every variable value, every dual.
func assertIdentical(t *testing.T, m *Model, cold, ff *Solution) {
	t.Helper()
	if !cold.Objective.Equal(ff.Objective) {
		t.Fatalf("objective: cold %v, float-first %v", cold.Objective, ff.Objective)
	}
	for v := 0; v < m.NumVars(); v++ {
		if !cold.Value(Var(v)).Equal(ff.Value(Var(v))) {
			t.Fatalf("value of var %d: cold %v, float-first %v", v, cold.Value(Var(v)), ff.Value(Var(v)))
		}
	}
	for i := 0; i < m.NumCons(); i++ {
		if !cold.Dual(i).Equal(ff.Dual(i)) {
			t.Fatalf("dual of con %d: cold %v, float-first %v", i, cold.Dual(i), ff.Dual(i))
		}
	}
}

// TestFloatFirstRandomParity: across 200 random LPs, the float-first
// path must return byte-identical status, objective, values and duals
// to the pure-exact engine. The float search mirrors the exact
// engine's Bland walk, so on these well-scaled models it lands on the
// exact engine's own terminal basis and certification costs zero
// repair pivots.
func TestFloatFirstRandomParity(t *testing.T) {
	repairs, fallbacks := 0, 0
	for seed := int64(0); seed < 200; seed++ {
		cold, err := randomSeededLEModel(seed, 0).Solve()
		if err != nil {
			t.Fatal(err)
		}
		m := randomSeededLEModel(seed, 0)
		ff, err := m.SolveOpts(&Options{FloatFirst: true})
		if err != nil {
			t.Fatal(err)
		}
		if cold.Status != ff.Status {
			t.Fatalf("seed %d: status cold %v, float-first %v", seed, cold.Status, ff.Status)
		}
		if cold.Status != Optimal {
			continue
		}
		assertIdentical(t, m, cold, ff)
		if err := m.CheckFeasible(ff.Values()); err != nil {
			t.Fatalf("seed %d: certified point infeasible: %v", seed, err)
		}
		if ff.Info.RepairPivots > 0 {
			repairs++
		}
		if ff.Info.CertifiedCold {
			fallbacks++
		}
	}
	t.Logf("repaired=%d fallbacks=%d of 200", repairs, fallbacks)
}

// TestFloatFirstBealeCycling: Beale's classic cycling LP is maximally
// degenerate — every phase-2 pivot of the cycle is degenerate. The
// float-first path must agree with the exact engine byte for byte
// under both pricing rules (under Dantzig, both engines fall back to
// Bland after the degeneracy stall).
func TestFloatFirstBealeCycling(t *testing.T) {
	for _, pricing := range []Pricing{PricingBland, PricingDantzig} {
		cold, err := bealeModel().SolveOpts(&Options{Pricing: pricing})
		if err != nil {
			t.Fatal(err)
		}
		m := bealeModel()
		ff, err := m.SolveOpts(&Options{Pricing: pricing, FloatFirst: true})
		if err != nil {
			t.Fatal(err)
		}
		if cold.Status != Optimal || ff.Status != Optimal {
			t.Fatalf("pricing %v: status cold %v, float-first %v", pricing, cold.Status, ff.Status)
		}
		if want := rat.New(1, 20); !ff.Objective.Equal(want) {
			t.Fatalf("pricing %v: objective %v, want 1/20", pricing, ff.Objective)
		}
		assertIdentical(t, m, cold, ff)
	}
}

// TestFloatFirstEpsilonObjectiveForcesRepair: the objective prefers y
// by 2^-60 — invisible in float64, so the float search stops at the
// x-vertex. Certification must detect the exactly-positive reduced
// cost and repair with exact pivots to the true optimum 1 + 2^-60.
func TestFloatFirstEpsilonObjectiveForcesRepair(t *testing.T) {
	build := func() *Model {
		m := NewModel()
		x, y := m.Var("x"), m.Var("y")
		m.Objective(Maximize, Expr{{x, ri(1)}, {y, ri(1).Add(eps60)}})
		m.Le("cap", Expr{{x, ri(1)}, {y, ri(1)}}, ri(1))
		return m
	}
	m := build()
	cold, ff := solveBoth(t, build, nil)
	if ff.Info.RepairPivots == 0 && !ff.Info.CertifiedCold {
		t.Fatalf("float basis accepted unrepaired, but the float search cannot see the 2^-60 objective gap: %+v", ff.Info)
	}
	want := ri(1).Add(eps60)
	if !ff.Objective.Equal(want) {
		t.Fatalf("objective %v, want 1 + 2^-60", ff.Objective)
	}
	assertIdentical(t, m, cold, ff)
}

// TestFloatFirstRepairBudgetFallback: with three variables separated
// by float-invisible objective gaps, repairing the float basis takes
// two exact pivots; a RepairBudget of one forces the certification to
// abandon the float work and re-solve pure-exact (CertifiedCold), and
// the result must still be the true optimum.
func TestFloatFirstRepairBudgetFallback(t *testing.T) {
	build := func() *Model {
		m := NewModel()
		x, y, z := m.Var("x"), m.Var("y"), m.Var("z")
		m.Objective(Maximize, Expr{
			{x, ri(1)},
			{y, ri(1).Add(eps60)},
			{z, ri(1).Add(eps60).Add(eps60)},
		})
		m.Le("cap", Expr{{x, ri(1)}, {y, ri(1)}, {z, ri(1)}}, ri(1))
		return m
	}
	m := build()
	cold, ff := solveBoth(t, build, &Options{RepairBudget: 1})
	if !ff.Info.CertifiedCold {
		t.Fatalf("RepairBudget=1 must force the exact fallback (the repair needs 2 pivots): %+v", ff.Info)
	}
	want := ri(1).Add(eps60).Add(eps60)
	if !ff.Objective.Equal(want) {
		t.Fatalf("objective %v, want 1 + 2^-59", ff.Objective)
	}
	assertIdentical(t, m, cold, ff)

	// With an adequate budget the same model certifies via repair
	// instead of falling back.
	ff2, err := build().SolveOpts(&Options{FloatFirst: true})
	if err != nil {
		t.Fatal(err)
	}
	if ff2.Info.CertifiedCold || ff2.Info.RepairPivots == 0 {
		t.Fatalf("default budget should repair in-place: %+v", ff2.Info)
	}
}

// TestFloatFirstDegeneratePhase1Repair: a system with an all-zero row
// and a duplicated equality exercises phase 1's artificial machinery
// and the redundant-row drop in both engines, while the 2^-60
// objective gap still forces the exact repair (or fallback) path.
func TestFloatFirstDegeneratePhase1Repair(t *testing.T) {
	build := func() *Model {
		m := NewModel()
		x, y := m.Var("x"), m.Var("y")
		m.Objective(Maximize, Expr{{x, ri(1)}, {y, ri(1).Add(eps60)}})
		m.Eq("zero", Expr{}, ri(0)) // all-zero row: redundant, phase-1 artificial only
		m.Eq("cap", Expr{{x, ri(1)}, {y, ri(1)}}, ri(1))
		m.Eq("dup", Expr{{x, ri(1)}, {y, ri(1)}}, ri(1)) // duplicate: dropped after phase 1
		return m
	}
	m := build()
	cold, ff := solveBoth(t, build, nil)
	if ff.Info.RepairPivots == 0 && !ff.Info.CertifiedCold {
		t.Fatalf("degenerate model with float-invisible gap certified unrepaired: %+v", ff.Info)
	}
	want := ri(1).Add(eps60)
	if !ff.Objective.Equal(want) {
		t.Fatalf("objective %v, want 1 + 2^-60", ff.Objective)
	}
	assertIdentical(t, m, cold, ff)
}

// TestFloatFirstIllConditionedConstraints: two near-parallel
// constraints whose coefficients differ by 2^-60 are
// indistinguishable in float64. The float search optimizes against
// the wrong (collapsed) geometry; the exact certification must
// detect the exactly-infeasible or suboptimal basis and repair or
// fall back, landing on the true vertex y = 1/(1+2^-60).
func TestFloatFirstIllConditionedConstraints(t *testing.T) {
	build := func() *Model {
		m := NewModel()
		x, y := m.Var("x"), m.Var("y")
		m.Objective(Maximize, Expr{{x, ri(1)}, {y, ri(2)}})
		m.Le("r1", Expr{{x, ri(1)}, {y, ri(1)}}, ri(1))
		m.Le("r2", Expr{{x, ri(1)}, {y, ri(1).Add(eps60)}}, ri(1))
		return m
	}
	m := build()
	cold, ff := solveBoth(t, build, nil)
	if ff.Info.RepairPivots == 0 && !ff.Info.CertifiedCold {
		t.Fatalf("float basis accepted against exactly-tighter constraint: %+v", ff.Info)
	}
	want := ri(2).Div(ri(1).Add(eps60))
	if !ff.Objective.Equal(want) {
		t.Fatalf("objective %v, want 2/(1+2^-60)", ff.Objective)
	}
	assertIdentical(t, m, cold, ff)
	if err := m.CheckFeasible(ff.Values()); err != nil {
		t.Fatalf("certified point infeasible: %v", err)
	}
}

// TestFloatFirstInfeasibleAndUnbounded: non-Optimal statuses are
// never trusted from the float phase — both must be re-derived by the
// exact engine (CertifiedCold) and agree with the cold solve.
func TestFloatFirstInfeasibleAndUnbounded(t *testing.T) {
	infeasible := func() *Model {
		m := NewModel()
		x := m.Var("x")
		m.Objective(Maximize, Expr{{x, ri(1)}})
		m.Le("lo", Expr{{x, ri(1)}}, ri(-1))
		return m
	}
	_, ff := solveBoth(t, infeasible, nil)
	if ff.Status != Infeasible {
		t.Fatalf("status %v, want infeasible", ff.Status)
	}
	if !ff.Info.CertifiedCold {
		t.Fatalf("infeasible status must be certified by the exact engine: %+v", ff.Info)
	}

	unbounded := func() *Model {
		m := NewModel()
		x := m.Var("x")
		m.Objective(Maximize, Expr{{x, ri(1)}})
		m.Ge("lo", Expr{{x, ri(1)}}, ri(1))
		return m
	}
	_, ff = solveBoth(t, unbounded, nil)
	if ff.Status != Unbounded {
		t.Fatalf("status %v, want unbounded", ff.Status)
	}
}

// FuzzFloatFirstParity drives the random-LP generator from fuzzed
// (seed, perturb) pairs and cross-checks the float-first path against
// the pure-exact engine: same status, byte-identical objective, and
// an exactly feasible certified point. Run with `go test -fuzz
// FuzzFloatFirstParity ./pkg/steady/lp` to search beyond the corpus.
func FuzzFloatFirstParity(f *testing.F) {
	f.Add(int64(0), int64(0))
	f.Add(int64(1), int64(0))
	f.Add(int64(7), int64(3))
	f.Add(int64(42), int64(-5))
	f.Add(int64(1<<40), int64(97))
	f.Add(int64(-1), int64(1))
	f.Fuzz(func(t *testing.T, seed, perturb int64) {
		if perturb > 1<<30 || perturb < -(1<<30) {
			return // keep rationals small enough to solve fast
		}
		cold, err := randomSeededLEModel(seed, perturb).Solve()
		if err != nil {
			t.Skip() // budget-class errors affect both paths alike
		}
		m := randomSeededLEModel(seed, perturb)
		ff, err := m.SolveOpts(&Options{FloatFirst: true})
		if err != nil {
			t.Fatalf("seed %d/%d: float-first errored where exact succeeded: %v", seed, perturb, err)
		}
		if cold.Status != ff.Status {
			t.Fatalf("seed %d/%d: status cold %v, float-first %v", seed, perturb, cold.Status, ff.Status)
		}
		if cold.Status != Optimal {
			return
		}
		if !cold.Objective.Equal(ff.Objective) {
			t.Fatalf("seed %d/%d: objective cold %v, float-first %v", seed, perturb, cold.Objective, ff.Objective)
		}
		if err := m.CheckFeasible(ff.Values()); err != nil {
			t.Fatalf("seed %d/%d: certified point infeasible: %v", seed, perturb, err)
		}
	})
}

// TestFloatFirstWarmInteraction: a warm basis takes precedence over
// FloatFirst — re-solving a perturbed neighbor from a float-first
// solve's certified basis must accept the warm start, skip the float
// phase entirely, and finish in (near) zero exact pivots; when the
// warm basis cannot be mapped, the solve must fall back to the
// float-first path, not the pure-exact cold solve.
func TestFloatFirstWarmInteraction(t *testing.T) {
	first, err := randomSeededLEModel(11, 0).SolveOpts(&Options{FloatFirst: true})
	if err != nil {
		t.Fatal(err)
	}
	if first.Status != Optimal || first.Basis() == nil {
		t.Fatalf("seed solve: status %v, basis %v", first.Status, first.Basis())
	}
	if first.Info.Pivots != 0 && first.Info.RepairPivots != first.Info.Pivots {
		t.Fatalf("float-first cold solve took unexplained exact pivots: %+v", first.Info)
	}

	// Perturbed neighbor, warm + float-first: the warm path must win.
	warm, err := randomSeededLEModel(11, 1).SolveOpts(&Options{
		WarmBasis:  first.Basis(),
		FloatFirst: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !warm.Info.WarmStarted {
		t.Fatalf("warm basis rejected for a same-shape neighbor: %+v", warm.Info)
	}
	if warm.Info.FloatPivots != 0 || warm.Info.CertifiedCold {
		t.Fatalf("accepted warm start must skip the float phase: %+v", warm.Info)
	}
	coldNeighbor, err := randomSeededLEModel(11, 1).Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !warm.Objective.Equal(coldNeighbor.Objective) {
		t.Fatalf("warm objective %v != cold %v", warm.Objective, coldNeighbor.Objective)
	}
	if warm.Info.Pivots*5 > coldNeighbor.Info.Pivots {
		t.Fatalf("warm re-solve took %d pivots vs cold %d — basis reuse bought nothing",
			warm.Info.Pivots, coldNeighbor.Info.Pivots)
	}

	// A basis from a structurally different model is rejected; the
	// solve must then run float-first, not pure-exact.
	other, err := randomSeededLEModel(12, 0).SolveOpts(&Options{
		WarmBasis:  first.Basis(),
		FloatFirst: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if other.Info.WarmStarted {
		t.Fatalf("foreign basis accepted: %+v", other.Info)
	}
	if other.Status == Optimal && other.Info.FloatPivots == 0 && !other.Info.CertifiedCold {
		t.Fatalf("rejected warm basis skipped the float-first path: %+v", other.Info)
	}
}
