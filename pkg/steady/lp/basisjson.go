package lp

import (
	"encoding/json"
	"fmt"
)

// basisJSON is the wire form of a Basis: the model shape it was
// recorded against plus one compact entry per basic column. It exists
// so a basis — a few hundred bytes — can be shipped between steadyd
// peers and turn a remote cache miss into a ~0-pivot local re-solve
// (see pkg/steady/cluster).
type basisJSON struct {
	Vars    int            `json:"vars"`
	Cons    int            `json:"cons"`
	Entries []basisJSONCol `json:"entries"`
}

// basisJSONCol is one basic column. Kind is "var", "neg" (the negative
// part of a free variable), "slack", "bslack" (the slack of a variable
// upper bound), or "surplus"; Idx names the variable or constraint.
type basisJSONCol struct {
	Kind string `json:"k"`
	Idx  int    `json:"i"`
}

// MarshalJSON renders the basis in a stable, versionless wire form
// (shape plus entries in basis order). A nil basis renders as JSON
// null.
func (b *Basis) MarshalJSON() ([]byte, error) {
	if b == nil {
		return []byte("null"), nil
	}
	out := basisJSON{Vars: b.nVars, Cons: b.nCons, Entries: make([]basisJSONCol, 0, len(b.entries))}
	for _, e := range b.entries {
		var kind string
		switch {
		case e.kind == colStruct && !e.neg:
			kind = "var"
		case e.kind == colStruct:
			kind = "neg"
		case e.kind == colSlack && e.bound:
			kind = "bslack"
		case e.kind == colSlack:
			kind = "slack"
		case e.kind == colSurplus:
			kind = "surplus"
		default:
			return nil, fmt.Errorf("lp: basis entry with unencodable kind %d", e.kind)
		}
		out.Entries = append(out.Entries, basisJSONCol{Kind: kind, Idx: e.idx})
	}
	return json.Marshal(out)
}

// UnmarshalJSON parses a basis previously rendered by MarshalJSON,
// validating shape and entry kinds (hostile input yields an error, not
// a corrupt basis). Index bounds against a concrete model are checked
// later by mapBasis, which discards a basis that does not fit — so a
// decoded basis is always safe to feed to SolveFrom or
// Options.WarmBasis.
func (b *Basis) UnmarshalJSON(data []byte) error {
	var in basisJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return err
	}
	if in.Vars < 0 || in.Cons < 0 {
		return fmt.Errorf("lp: basis with negative shape %dx%d", in.Vars, in.Cons)
	}
	entries := make([]basisEntry, 0, len(in.Entries))
	for i, e := range in.Entries {
		if e.Idx < 0 {
			return fmt.Errorf("lp: basis entry %d has negative index %d", i, e.Idx)
		}
		var ent basisEntry
		switch e.Kind {
		case "var":
			ent = basisEntry{kind: colStruct, idx: e.Idx}
		case "neg":
			ent = basisEntry{kind: colStruct, neg: true, idx: e.Idx}
		case "slack":
			ent = basisEntry{kind: colSlack, idx: e.Idx}
		case "bslack":
			ent = basisEntry{kind: colSlack, bound: true, idx: e.Idx}
		case "surplus":
			ent = basisEntry{kind: colSurplus, idx: e.Idx}
		default:
			return fmt.Errorf("lp: basis entry %d has unknown kind %q", i, e.Kind)
		}
		entries = append(entries, ent)
	}
	b.nVars, b.nCons, b.entries = in.Vars, in.Cons, entries
	return nil
}
