package lp_test

import (
	"fmt"

	"repro/pkg/steady/lp"
	"repro/pkg/steady/rat"
)

// ExampleModel builds and solves a two-variable LP with the exact
// rational simplex:
//
//	maximize   x + y
//	subject to 0 <= x <= 2, 0 <= y <= 3
//	           2x + y <= 4
//
// The optimum sits at the vertex (1/2, 3) with objective 7/2 —
// returned exactly, with no floating-point tolerance.
func ExampleModel() {
	m := lp.NewModel()
	x := m.VarRange("x", rat.FromInt(2))
	y := m.VarRange("y", rat.FromInt(3))
	m.Objective(lp.Maximize, lp.Expr{}.PlusInt(x, 1).PlusInt(y, 1))
	m.Le("cap", lp.Expr{}.PlusInt(x, 2).PlusInt(y, 1), rat.FromInt(4))

	sol, err := m.Solve()
	if err != nil {
		panic(err)
	}
	fmt.Println("status   :", sol.Status)
	fmt.Println("objective:", sol.Objective)
	fmt.Println("x =", sol.Value(x), " y =", sol.Value(y))
	// Output:
	// status   : optimal
	// objective: 7/2
	// x = 1/2  y = 3
}
