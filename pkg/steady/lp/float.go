package lp

import (
	"errors"
	"fmt"
	"math"

	"repro/pkg/steady/rat"
)

// FloatSolution is the result of the float64 solver.
type FloatSolution struct {
	Status    Status
	Objective float64
	values    []float64
}

// Value returns the (approximate) optimal value of v.
func (s *FloatSolution) Value(v Var) float64 { return s.values[v] }

// Values returns all variable values, indexed by Var.
func (s *FloatSolution) Values() []float64 { return s.values }

const (
	floatEps = 1e-9
	// blandAfter switches the float solver from Dantzig's rule to
	// Bland's rule after this many consecutive degenerate pivots,
	// preventing cycling.
	blandAfter = 64
)

// SolveFloat solves the model with a float64 two-phase dense simplex
// (Dantzig pricing with a Bland fallback). It exists for the solver
// ablation (E14) and the exact-vs-float parity tests: the exact
// rational solver is the primary engine of this package, but the
// float solver shows what an off-the-shelf inexact LP would deliver
// and how the two compare at scale.
func (m *Model) SolveFloat() (*FloatSolution, error) {
	s := m.standardize()
	a, b := s.densify()
	basis := s.identityBasis()
	ft := &floatTableau{
		a: a, b: b,
		basis:  basis,
		banned: make([]bool, len(s.cols)),
		d:      make([]float64, len(s.cols)),
		cols:   s.cols,
	}
	limit := DefaultPivotFactor * (len(a) + len(s.cols) + 1)

	c1 := make([]float64, len(s.cols))
	hasArt := false
	for j, col := range s.cols {
		if col.kind == colArtificial {
			c1[j] = -1
			hasArt = true
		}
	}
	if hasArt {
		ft.priceOut(c1)
		if err := ft.iterate(limit); err != nil {
			return nil, fmt.Errorf("float phase 1: %w", err)
		}
		if math.Abs(ft.objective(c1)) > 1e-6 {
			return &FloatSolution{Status: Infeasible}, nil
		}
		ft.banArtificials()
	}

	c2 := make([]float64, len(s.cols))
	for j, col := range s.cols {
		if col.kind != colStruct {
			continue
		}
		c := m.obj[col.vr].Float64()
		if col.neg {
			c = -c
		}
		if m.sense == Minimize {
			c = -c
		}
		c2[j] = c
	}
	ft.priceOut(c2)
	if err := ft.iterate(limit); err != nil {
		if errors.Is(err, errUnbounded) {
			return &FloatSolution{Status: Unbounded}, nil
		}
		return nil, fmt.Errorf("float phase 2: %w", err)
	}

	values := make([]float64, m.NumVars())
	for i, bj := range ft.basis {
		col := s.cols[bj]
		if col.kind != colStruct {
			continue
		}
		if col.neg {
			values[col.vr] -= ft.b[i]
		} else {
			values[col.vr] += ft.b[i]
		}
	}
	obj := 0.0
	for v, c := range m.obj {
		obj += c.Float64() * values[v]
	}
	return &FloatSolution{Status: Optimal, Objective: obj, values: values}, nil
}

type floatTableau struct {
	a      [][]float64
	b      []float64
	basis  []int
	banned []bool
	d      []float64
	cols   []column

	degenerate int // consecutive degenerate pivots (triggers Bland)
}

func (t *floatTableau) priceOut(c []float64) {
	copy(t.d, c)
	for i, bj := range t.basis {
		cb := c[bj]
		if cb == 0 {
			continue
		}
		for j := range t.d {
			t.d[j] -= cb * t.a[i][j]
		}
	}
}

func (t *floatTableau) objective(c []float64) float64 {
	z := 0.0
	for i, bj := range t.basis {
		z += c[bj] * t.b[i]
	}
	return z
}

func (t *floatTableau) iterate(limit int) error {
	for iter := 0; ; iter++ {
		if iter > limit {
			return ErrIterationLimit
		}
		enter := -1
		if t.degenerate < blandAfter {
			// Dantzig: most positive reduced cost.
			best := floatEps
			for j := range t.d {
				if !t.banned[j] && t.d[j] > best {
					best, enter = t.d[j], j
				}
			}
		} else {
			// Bland fallback: first eligible column.
			for j := range t.d {
				if !t.banned[j] && t.d[j] > floatEps {
					enter = j
					break
				}
			}
		}
		if enter < 0 {
			return nil
		}
		leave := -1
		best := math.Inf(1)
		for i := range t.a {
			aie := t.a[i][enter]
			if aie <= floatEps {
				continue
			}
			ratio := t.b[i] / aie
			if ratio < best-floatEps ||
				(math.Abs(ratio-best) <= floatEps && (leave < 0 || t.basis[i] < t.basis[leave])) {
				best, leave = ratio, i
			}
		}
		if leave < 0 {
			return errUnbounded
		}
		if best <= floatEps {
			t.degenerate++
		} else {
			t.degenerate = 0
		}
		t.pivot(leave, enter)
	}
}

func (t *floatTableau) pivot(r, e int) {
	inv := 1 / t.a[r][e]
	row := t.a[r]
	for j := range row {
		row[j] *= inv
	}
	t.b[r] *= inv
	for i := range t.a {
		if i == r {
			continue
		}
		f := t.a[i][e]
		if f == 0 {
			continue
		}
		ai := t.a[i]
		for j := range ai {
			ai[j] -= f * row[j]
		}
		t.b[i] -= f * t.b[r]
		if t.b[i] < 0 && t.b[i] > -floatEps {
			t.b[i] = 0
		}
	}
	f := t.d[e]
	if f != 0 {
		for j := range t.d {
			t.d[j] -= f * row[j]
		}
	}
	t.basis[r] = e
}

func (t *floatTableau) banArtificials() {
	for j, col := range t.cols {
		if col.kind == colArtificial {
			t.banned[j] = true
		}
	}
	for i := 0; i < len(t.a); i++ {
		bj := t.basis[i]
		if t.cols[bj].kind != colArtificial {
			continue
		}
		pivoted := false
		for j := range t.cols {
			if t.banned[j] || t.cols[j].kind == colArtificial {
				continue
			}
			if math.Abs(t.a[i][j]) > floatEps {
				t.pivot(i, j)
				pivoted = true
				break
			}
		}
		if !pivoted {
			last := len(t.a) - 1
			t.a[i], t.a[last] = t.a[last], t.a[i]
			t.b[i], t.b[last] = t.b[last], t.b[i]
			t.basis[i], t.basis[last] = t.basis[last], t.basis[i]
			t.a = t.a[:last]
			t.b = t.b[:last]
			t.basis = t.basis[:last]
			i--
		}
	}
}

// RatValues converts a float solution to rationals with bounded
// denominators, for feeding approximate solves into exact machinery.
func (s *FloatSolution) RatValues(maxDen int64) []rat.Rat {
	out := make([]rat.Rat, len(s.values))
	for i, v := range s.values {
		out[i] = rat.ApproxFloat(v, maxDen)
	}
	return out
}
