package lp

import (
	"fmt"
	"io"
	"strings"
)

// WriteLP renders the model in the CPLEX LP file format, so any model
// built here can be cross-checked against an external solver (the
// reproduction itself never needs one — the exact simplex is
// authoritative — but reviewers can).
func (m *Model) WriteLP(w io.Writer) error {
	var b strings.Builder
	if m.sense == Minimize {
		b.WriteString("Minimize\n obj: ")
	} else {
		b.WriteString("Maximize\n obj: ")
	}
	first := true
	for v := 0; v < m.NumVars(); v++ {
		c, ok := m.obj[Var(v)]
		if !ok || c.IsZero() {
			continue
		}
		writeTerm(&b, &first, c.Float64(), m.safeName(Var(v)))
	}
	if first {
		b.WriteString("0 x0")
	}
	b.WriteString("\nSubject To\n")
	for i, c := range m.cons {
		fmt.Fprintf(&b, " c%d: ", i)
		cf := true
		// Merge duplicate variables.
		merged := map[Var]float64{}
		var order []Var
		for _, t := range c.Expr {
			if _, seen := merged[t.Var]; !seen {
				order = append(order, t.Var)
			}
			merged[t.Var] += t.Coef.Float64()
		}
		for _, v := range order {
			writeTerm(&b, &cf, merged[v], m.safeName(v))
		}
		if cf {
			b.WriteString("0 ")
		}
		switch c.Op {
		case LE:
			b.WriteString(" <= ")
		case GE:
			b.WriteString(" >= ")
		case EQ:
			b.WriteString(" = ")
		}
		fmt.Fprintf(&b, "%g\n", c.RHS.Float64())
	}
	b.WriteString("Bounds\n")
	for v := 0; v < m.NumVars(); v++ {
		name := m.safeName(Var(v))
		switch {
		case m.free[v]:
			fmt.Fprintf(&b, " %s free\n", name)
		case m.hasUp[v]:
			fmt.Fprintf(&b, " 0 <= %s <= %g\n", name, m.upper[v].Float64())
		default:
			fmt.Fprintf(&b, " %s >= 0\n", name)
		}
	}
	b.WriteString("End\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// safeName sanitizes variable names for the LP format (alphanumeric
// and underscore only, never starting with a digit or 'e').
func (m *Model) safeName(v Var) string {
	raw := m.names[v]
	var b strings.Builder
	fmt.Fprintf(&b, "x%d_", int(v))
	for _, r := range raw {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			b.WriteRune(r)
		}
	}
	return b.String()
}

func writeTerm(b *strings.Builder, first *bool, coef float64, name string) {
	if coef == 0 {
		return
	}
	if *first {
		if coef < 0 {
			fmt.Fprintf(b, "- %g %s ", -coef, name)
		} else {
			fmt.Fprintf(b, "%g %s ", coef, name)
		}
		*first = false
		return
	}
	if coef < 0 {
		fmt.Fprintf(b, "- %g %s ", -coef, name)
	} else {
		fmt.Fprintf(b, "+ %g %s ", coef, name)
	}
}
