package lp

import "repro/pkg/steady/rat"

// colKind distinguishes computational-form columns for extraction,
// duals and basis encoding.
type colKind int8

const (
	colStruct     colKind = iota
	colSlack              // +1 coefficient in its row (LE rows)
	colSurplus            // -1 coefficient in its row (GE rows)
	colArtificial         // +1 coefficient in its row (GE/EQ rows)
)

// centry is one nonzero of a sparse column: the coefficient v at row
// position row.
type centry struct {
	row int
	v   rat.Rat
}

// column is one computational-form column: its identity (which model
// variable or which row's logical column it is) plus its sparse
// constraint coefficients. Row positions in nz are kept current when
// redundant rows are removed.
type column struct {
	kind colKind
	vr   Var  // colStruct: the model variable
	neg  bool // colStruct: the negative part of a free variable
	row  int  // slack/surplus/artificial: the *origin* row index
	nz   []centry
}

// stdRow is a standardized constraint row (rhs >= 0).
type stdRow struct {
	op       Op
	rhs      rat.Rat
	conIdx   int  // index into model.cons, or -1 for an upper-bound row
	boundVar Var  // for conIdx == -1: the bounded variable
	flipped  bool // row was negated to make rhs >= 0
	origin   int  // row index at construction (before removals)
}

// stdForm is the sparse computational form of a Model: equational
// constraints with non-negative right-hand sides, columns stored
// sparse, and an all-identity starting basis of slacks/artificials.
type stdForm struct {
	m    *Model
	cols []column
	rows []stdRow
	b    []rat.Rat
}

// standardize converts the model to sparse computational form. Column
// order (structural columns first, split free variables adjacent,
// then per-row logical columns in row order) and row order
// (constraints, then upper bounds) are deterministic and match the
// historical dense tableau, so pivot sequences are reproducible.
func (m *Model) standardize() *stdForm {
	var cols []column
	structOf := make([]int, m.NumVars()) // var -> first (positive) column
	for v := 0; v < m.NumVars(); v++ {
		structOf[v] = len(cols)
		cols = append(cols, column{kind: colStruct, vr: Var(v)})
		if m.free[v] {
			cols = append(cols, column{kind: colStruct, vr: Var(v), neg: true})
		}
	}

	var rows []stdRow
	var b []rat.Rat
	addRow := func(coefVar map[Var]rat.Rat, op Op, rhs rat.Rat, conIdx int, boundVar Var) {
		flipped := rhs.Sign() < 0
		if flipped {
			rhs = rhs.Neg()
			switch op {
			case LE:
				op = GE
			case GE:
				op = LE
			}
		}
		r := len(rows)
		for v, c := range coefVar {
			if c.IsZero() {
				continue
			}
			if flipped {
				c = c.Neg()
			}
			j := structOf[v]
			cols[j].nz = append(cols[j].nz, centry{row: r, v: c})
			if m.free[v] {
				cols[j+1].nz = append(cols[j+1].nz, centry{row: r, v: c.Neg()})
			}
		}
		rows = append(rows, stdRow{op: op, rhs: rhs, conIdx: conIdx, boundVar: boundVar, flipped: flipped, origin: r})
		b = append(b, rhs)
	}
	for i, c := range m.cons {
		cv := make(map[Var]rat.Rat, len(c.Expr))
		for _, term := range c.Expr {
			cv[term.Var] = cv[term.Var].Add(term.Coef)
		}
		addRow(cv, c.Op, c.RHS, i, -1)
	}
	for v := 0; v < m.NumVars(); v++ {
		if m.hasUp[v] {
			addRow(map[Var]rat.Rat{Var(v): rat.One()}, LE, m.upper[v], -1, Var(v))
		}
	}

	// Logical columns in row order, exactly like the historical
	// tableau: LE gets a slack, GE a surplus and an artificial, EQ an
	// artificial.
	for i, r := range rows {
		switch r.op {
		case LE:
			cols = append(cols, column{kind: colSlack, row: i, nz: []centry{{row: i, v: rat.One()}}})
		case GE:
			cols = append(cols, column{kind: colSurplus, row: i, nz: []centry{{row: i, v: rat.FromInt(-1)}}})
			cols = append(cols, column{kind: colArtificial, row: i, nz: []centry{{row: i, v: rat.One()}}})
		case EQ:
			cols = append(cols, column{kind: colArtificial, row: i, nz: []centry{{row: i, v: rat.One()}}})
		}
	}

	return &stdForm{m: m, cols: cols, rows: rows, b: b}
}

// identityBasis returns the all-slack/artificial starting basis: for
// each row, the index of the logical column that is its identity
// column (the slack of an LE row, the artificial of a GE/EQ row).
func (s *stdForm) identityBasis() []int {
	basis := make([]int, len(s.rows))
	for j, col := range s.cols {
		switch col.kind {
		case colSlack, colArtificial:
			basis[col.row] = j
		}
	}
	return basis
}

// rowByOrigin finds the surviving row with the given original index,
// or nil if it was removed as redundant.
func (s *stdForm) rowByOrigin(orig int) *stdRow {
	if orig < len(s.rows) && s.rows[orig].origin == orig {
		return &s.rows[orig]
	}
	for i := range s.rows {
		if s.rows[i].origin == orig {
			return &s.rows[i]
		}
	}
	return nil
}

// removeRow deletes row position r (a redundant row discovered after
// phase 1), remapping every column's sparse entries.
func (s *stdForm) removeRow(r int) {
	s.rows = append(s.rows[:r], s.rows[r+1:]...)
	s.b = append(s.b[:r], s.b[r+1:]...)
	for j := range s.cols {
		nz := s.cols[j].nz[:0]
		for _, e := range s.cols[j].nz {
			switch {
			case e.row == r:
				// dropped
			case e.row > r:
				nz = append(nz, centry{row: e.row - 1, v: e.v})
			default:
				nz = append(nz, e)
			}
		}
		s.cols[j].nz = nz
	}
}

// densify materializes the constraint matrix and rhs as dense
// float64 slices, for the float64 comparison solver.
func (s *stdForm) densify() (a [][]float64, b []float64) {
	mRows, n := len(s.rows), len(s.cols)
	a = make([][]float64, mRows)
	for i := range a {
		a[i] = make([]float64, n)
	}
	for j := range s.cols {
		for _, e := range s.cols[j].nz {
			a[e.row][j] = e.v.Float64()
		}
	}
	b = make([]float64, mRows)
	for i, v := range s.b {
		b[i] = v.Float64()
	}
	return a, b
}
