package lp

import (
	"math/rand"
	"testing"

	"repro/pkg/steady/rat"
)

// randomSeededLEModel builds a structurally fixed LP from seed: the
// sparsity pattern, operators and bounds depend only on seed, while
// perturb shifts the constraint coefficients and right-hand sides
// slightly — exactly the shape of a sweep family, where platform
// costs move but the platform graph does not.
func randomSeededLEModel(seed, perturb int64) *Model {
	rng := rand.New(rand.NewSource(seed))
	m := NewModel()
	nVars, nCons := 6+rng.Intn(5), 4+rng.Intn(5)
	vars := make([]Var, nVars)
	for i := range vars {
		vars[i] = m.VarRange("x", ri(int64(rng.Intn(8)+1)))
	}
	obj := Expr{}
	for _, v := range vars {
		obj = append(obj, Term{v, ri(int64(rng.Intn(11) - 3))})
	}
	m.Objective(Maximize, obj)
	for c := 0; c < nCons; c++ {
		e := Expr{}
		for _, v := range vars {
			if rng.Intn(2) == 0 {
				num := int64(rng.Intn(9) + 1)
				den := int64(rng.Intn(3)+1) * 97
				e = append(e, Term{v, rr(num*97+perturb, den)})
			}
		}
		if len(e) == 0 {
			e = append(e, Term{vars[0], ri(1)})
		}
		rhs := int64(rng.Intn(20)+1) * 97
		m.Le("r", e, rr(rhs+perturb, 97))
	}
	return m
}

// TestSolveFromIdenticalModel: warm-starting a model from its own
// optimal basis must confirm optimality without a single pivot and
// return the identical solution.
func TestSolveFromIdenticalModel(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		m := randomSeededLEModel(seed, 0)
		cold, err := m.Solve()
		if err != nil || cold.Status != Optimal {
			t.Fatalf("seed %d: cold %v %v", seed, cold, err)
		}
		if cold.Info.WarmStarted {
			t.Fatalf("seed %d: cold solve claims warm start", seed)
		}
		if cold.Basis() == nil {
			t.Fatalf("seed %d: optimal solution has no basis", seed)
		}
		m2 := randomSeededLEModel(seed, 0)
		warm, err := m2.SolveFrom(cold.Basis())
		if err != nil || warm.Status != Optimal {
			t.Fatalf("seed %d: warm %v %v", seed, warm, err)
		}
		if !warm.Info.WarmStarted {
			t.Fatalf("seed %d: warm solve fell back to cold", seed)
		}
		if warm.Info.Pivots != 0 {
			t.Fatalf("seed %d: re-solving the identical model took %d pivots, want 0", seed, warm.Info.Pivots)
		}
		if !warm.Objective.Equal(cold.Objective) {
			t.Fatalf("seed %d: warm obj %v != cold obj %v", seed, warm.Objective, cold.Objective)
		}
		for v := 0; v < m.NumVars(); v++ {
			if !warm.Value(Var(v)).Equal(cold.Value(Var(v))) {
				t.Fatalf("seed %d: var %d: warm %v != cold %v", seed, v, warm.Value(Var(v)), cold.Value(Var(v)))
			}
		}
	}
}

// TestSolveFromSweepFamily re-solves perturbed neighbors from the
// previous optimal basis and checks (a) exactness — the warm optimum
// equals an independent cold solve's optimum — and (b) the
// acceptance bar: warm re-solves take >= 5x fewer pivots than cold
// solves across the family.
func TestSolveFromSweepFamily(t *testing.T) {
	coldPivots, warmPivots, warmSolves := 0, 0, 0
	for seed := int64(1); seed < 9; seed++ {
		var basis *Basis
		for step := int64(0); step < 6; step++ {
			cold, err := randomSeededLEModel(seed, step).Solve()
			if err != nil || cold.Status != Optimal {
				t.Fatalf("seed %d step %d: cold %v %v", seed, step, cold, err)
			}
			warm, err := randomSeededLEModel(seed, step).SolveFrom(basis)
			if err != nil || warm.Status != Optimal {
				t.Fatalf("seed %d step %d: warm %v %v", seed, step, warm, err)
			}
			if !warm.Objective.Equal(cold.Objective) {
				t.Fatalf("seed %d step %d: warm obj %v != cold obj %v", seed, step, warm.Objective, cold.Objective)
			}
			if err := randomSeededLEModel(seed, step).CheckFeasible(warm.Values()); err != nil {
				t.Fatalf("seed %d step %d: warm point infeasible: %v", seed, step, err)
			}
			if step > 0 {
				coldPivots += cold.Info.Pivots
				warmPivots += warm.Info.Pivots
				if warm.Info.WarmStarted {
					warmSolves++
				}
			}
			basis = warm.Basis()
		}
	}
	if warmSolves == 0 {
		t.Fatalf("no re-solve accepted its warm basis")
	}
	t.Logf("cold pivots %d, warm pivots %d over %d warm re-solves", coldPivots, warmPivots, warmSolves)
	if warmPivots*5 > coldPivots {
		t.Fatalf("warm re-solves took %d pivots vs %d cold — want >= 5x reduction", warmPivots, coldPivots)
	}
}

// TestSolveFromMismatchedBasis: a basis from a differently shaped
// model must be rejected and the solve must fall back to a correct
// cold solve.
func TestSolveFromMismatchedBasis(t *testing.T) {
	donor, err := randomSeededLEModel(3, 0).Solve()
	if err != nil {
		t.Fatal(err)
	}
	m := NewModel()
	x := m.Var("x")
	m.Objective(Maximize, Expr{{x, rat.FromInt(1)}})
	m.Le("cap", Expr{{x, rat.FromInt(2)}}, rat.FromInt(9))
	s, err := m.SolveFrom(donor.Basis())
	if err != nil {
		t.Fatal(err)
	}
	if s.Info.WarmStarted {
		t.Fatalf("mismatched basis was accepted")
	}
	if s.Status != Optimal || !s.Objective.Equal(rat.New(9, 2)) {
		t.Fatalf("fallback solve wrong: %v %v", s.Status, s.Objective)
	}
}

// TestSolveFromWithRedundantRows: a cold solve of a model with
// duplicated equalities drops the redundant rows, so its basis names
// fewer columns than the re-standardized model has rows. Warm start
// must pad the uncovered rows (with banned artificials pinned at
// zero) and still return the exact optimum.
func TestSolveFromWithRedundantRows(t *testing.T) {
	build := func() *Model {
		m := NewModel()
		x, y := m.Var("x"), m.Var("y")
		m.Objective(Maximize, Expr{{x, rat.FromInt(1)}})
		m.Eq("e1", Expr{{x, rat.FromInt(1)}, {y, rat.FromInt(1)}}, rat.FromInt(2))
		m.Eq("e2", Expr{{x, rat.FromInt(1)}, {y, rat.FromInt(1)}}, rat.FromInt(2))
		m.Eq("e3", Expr{{x, rat.FromInt(2)}, {y, rat.FromInt(2)}}, rat.FromInt(4))
		return m
	}
	cold, err := build().Solve()
	if err != nil || cold.Status != Optimal {
		t.Fatalf("cold: %v %v", cold, err)
	}
	if cold.Basis().Len() >= build().NumCons() {
		t.Fatalf("expected a shrunk basis (redundant rows removed), got %d entries", cold.Basis().Len())
	}
	warm, err := build().SolveFrom(cold.Basis())
	if err != nil || warm.Status != Optimal {
		t.Fatalf("warm: %v %v", warm, err)
	}
	if !warm.Objective.Equal(rat.FromInt(2)) {
		t.Fatalf("warm objective %v, want 2", warm.Objective)
	}
	if err := build().CheckFeasible(warm.Values()); err != nil {
		t.Fatal(err)
	}
	if !warm.Info.WarmStarted {
		t.Fatalf("padding path fell back to cold")
	}
}

// TestSolveFromAfterRHSShift exercises the dual-simplex repair path:
// shrinking a binding right-hand side keeps the old basis dual
// feasible but primal infeasible, which warm start must repair
// without a cold restart.
func TestSolveFromAfterRHSShift(t *testing.T) {
	build := func(cap int64) *Model {
		m := NewModel()
		x, y := m.Var("x"), m.Var("y")
		m.Objective(Maximize, Expr{{x, rat.FromInt(3)}, {y, rat.FromInt(5)}})
		m.Le("c1", Expr{{x, rat.FromInt(1)}}, rat.FromInt(4))
		m.Le("c2", Expr{{y, rat.FromInt(2)}}, rat.FromInt(12))
		m.Le("c3", Expr{{x, rat.FromInt(3)}, {y, rat.FromInt(2)}}, rat.FromInt(cap))
		return m
	}
	first, err := build(18).Solve()
	if err != nil || first.Status != Optimal {
		t.Fatalf("cold: %v %v", first, err)
	}
	warm, err := build(12).SolveFrom(first.Basis())
	if err != nil || warm.Status != Optimal {
		t.Fatalf("warm: %v %v", warm, err)
	}
	if !warm.Info.WarmStarted {
		t.Fatalf("rhs shift fell back to cold")
	}
	want, err := build(12).Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !warm.Objective.Equal(want.Objective) {
		t.Fatalf("warm obj %v != cold obj %v", warm.Objective, want.Objective)
	}
	if warm.Info.Pivots >= want.Info.Pivots {
		t.Fatalf("dual repair took %d pivots, cold %d — no win", warm.Info.Pivots, want.Info.Pivots)
	}
}
