package lp

import (
	"errors"
	"math"
	"sort"
)

// This file implements the float-first fast path of the exact engine:
// run the whole two-phase simplex *search* in sparse float64, keep
// only the final basis, reinstall that basis exactly over rationals,
// and verify (or repair) optimality with exact pivots. The float
// numbers never reach the caller — every returned value is certified
// by the exact engine — so the split buys raw solve speed (rational
// arithmetic dominates cold solves) without giving up the paper's
// exactness invariant.
//
// The float engine is a deliberate *mirror* of the exact engine: the
// same pricing rules, the same ratio-test tie-breaks (degenerate rows
// first, then smallest basic column index), the same artificial
// banning and redundant-row removal after phase 1. Under the default
// Bland pricing it therefore walks the same pivot sequence as the
// exact cold solve — as long as float64 sign and comparison judgments
// agree with the exact ones, which they do at this package's LP sizes
// and coefficient magnitudes — and terminates on the *same basis*, so
// the exact certification installs it, finds it exactly optimal with
// zero repair pivots, and extracts byte-identical values and duals.
// Where float rounding does misjudge a comparison, the paths diverge
// and the certification repairs the difference with exact pivots
// (SolveInfo.RepairPivots) or, past Options.RepairBudget, abandons
// the float work entirely and re-solves cold
// (SolveInfo.CertifiedCold). The float phase can cost time, never
// correctness.
//
// The pipeline of Options.FloatFirst:
//
//  1. standardize the model once (shared by both engines);
//  2. sparse float64 revised simplex over private float copies —
//     product-form basis inverse, partial-pivoting refactorization;
//  3. encode the float-final basis in model terms (encodeBasis — the
//     same representation warm starts use);
//  4. reinstall it exactly (installBasis + recomputeXB) and check
//     primal and dual feasibility in big.Rat;
//  5. repair disagreements with exact primal/dual simplex pivots,
//     at most Options.RepairBudget of them;
//  6. fall back to the pure-exact two-phase solve when the float
//     phase fails (cycling, numerically singular basis, wrong
//     status) or the repair budget is exhausted.

const (
	// ffEps is the float engine's zero threshold for reduced costs,
	// ratio-test comparisons and degenerate-row detection. The
	// platform LPs keep coefficients within a few orders of magnitude
	// of 1, so an absolute tolerance works.
	ffEps = 1e-9
	// ffPivTol is the smallest pivot magnitude the float engine
	// accepts before declaring the basis numerically singular (and
	// handing the solve to the exact engine).
	ffPivTol = 1e-11
	// ffFeasTol bounds the phase-1 artificial residual accepted as
	// "feasible" by the float phase. The exact certification re-checks
	// feasibility anyway; this only decides which engine finishes.
	ffFeasTol = 1e-7
	// ffReinvert bounds the float eta file length, like reinvertEvery
	// for the exact engine (refactorization also limits float error
	// accumulation).
	ffReinvert = 64
)

var errFloatSingular = errors.New("lp: float basis numerically singular")

// fentry is one nonzero of a sparse float64 column.
type fentry struct {
	row int
	v   float64
}

// feta is one product-form factor of the float basis inverse.
type feta struct {
	r    int
	diag float64
	nz   []fentry
}

// fengine is the sparse float64 twin of engine. It works on private
// float copies of the standardized columns (the shared stdForm is
// never mutated), so redundant-row removal and pivoting stay local;
// the final basis is reported as column indices into the original
// form, ready for encodeBasis.
type fengine struct {
	s     *stdForm
	cols  [][]fentry // private sparse float copies of s.cols
	b     []float64
	basis []int
	inB   []bool
	bannd []bool
	xB    []float64
	etas  []feta
	c     []float64
	y     []float64
	w     []float64

	pivots  int
	par     params
	degen   int
	blandOn bool
	// baseEtas is the eta-file length right after the last
	// refactorization (reinvert emits one factor per basic column).
	// Only pivots *since* then count against ffReinvert — otherwise
	// any basis larger than ffReinvert rows would refactor on every
	// pivot.
	baseEtas int
}

func newFengine(s *stdForm, par params) *fengine {
	e := &fengine{
		s:     s,
		cols:  make([][]fentry, len(s.cols)),
		b:     make([]float64, len(s.rows)),
		inB:   make([]bool, len(s.cols)),
		bannd: make([]bool, len(s.cols)),
		c:     make([]float64, len(s.cols)),
		y:     make([]float64, len(s.rows)),
		w:     make([]float64, len(s.rows)),
		par:   par,
	}
	for j := range s.cols {
		nz := make([]fentry, 0, len(s.cols[j].nz))
		for _, en := range s.cols[j].nz {
			nz = append(nz, fentry{row: en.row, v: en.v.Float64()})
		}
		e.cols[j] = nz
	}
	for i, v := range s.b {
		e.b[i] = v.Float64()
	}
	return e
}

// solveFloatSparse runs the float two-phase simplex and returns the
// final basis (column indices into s.cols) with the float status.
// Any numerical failure comes back as an error; the caller falls back
// to the exact engine.
func solveFloatSparse(s *stdForm, par params) (basis []int, status Status, pivots int, err error) {
	e := newFengine(s, par)
	e.basis = s.identityBasis()
	for _, j := range e.basis {
		e.inB[j] = true
	}
	e.xB = append([]float64(nil), e.b...)

	hasArt := false
	for j := range s.cols {
		if s.cols[j].kind == colArtificial {
			hasArt = true
			break
		}
	}
	if hasArt {
		e.setPhase1Costs()
		if err := e.primal(); err != nil {
			return nil, 0, e.pivots, err
		}
		scale := 1.0
		for i := range e.b {
			scale += math.Abs(e.b[i])
		}
		art := 0.0
		for i, bj := range e.basis {
			if e.s.cols[bj].kind == colArtificial {
				art += math.Abs(e.xB[i])
			}
		}
		if art > ffFeasTol*scale {
			return nil, Infeasible, e.pivots, nil
		}
		if err := e.banArtificials(); err != nil {
			return nil, 0, e.pivots, err
		}
	}

	e.setPhase2Costs()
	if err := e.primal(); err != nil {
		if errors.Is(err, errUnbounded) {
			return nil, Unbounded, e.pivots, nil
		}
		return nil, 0, e.pivots, err
	}
	return e.basis, Optimal, e.pivots, nil
}

func (e *fengine) setPhase1Costs() {
	for j := range e.c {
		if e.s.cols[j].kind == colArtificial {
			e.c[j] = -1
		} else {
			e.c[j] = 0
		}
	}
}

func (e *fengine) setPhase2Costs() {
	for j := range e.c {
		col := &e.s.cols[j]
		if col.kind != colStruct {
			e.c[j] = 0
			continue
		}
		c := e.s.m.obj[col.vr].Float64()
		if col.neg {
			c = -c
		}
		if e.s.m.sense == Minimize {
			c = -c
		}
		e.c[j] = c
	}
}

// primal runs float revised primal simplex iterations to (float)
// optimality or unboundedness.
func (e *fengine) primal() error {
	for {
		enter := e.price()
		if enter < 0 {
			return nil
		}
		w := e.colFtran(enter)
		leave := e.ratioTest(w)
		if leave < 0 {
			return errUnbounded
		}
		if e.pivots >= e.par.budget {
			return ErrIterationLimit
		}
		if err := e.pivot(leave, enter, w); err != nil {
			return err
		}
	}
}

// price mirrors engine.price: Bland's first improving column, or
// Dantzig's most positive reduced cost until the degeneracy fallback
// engages — so that under each pricing rule the float walk matches
// the exact walk judgment for judgment.
func (e *fengine) price() int {
	for i := range e.y {
		e.y[i] = 0
	}
	for i, bj := range e.basis {
		e.y[i] = e.c[bj]
	}
	e.btran(e.y)
	bland := e.blandOn || e.par.pricing == PricingBland
	enter := -1
	best := 0.0
	for j := range e.cols {
		if e.bannd[j] || e.inB[j] {
			continue
		}
		d := e.c[j]
		for _, en := range e.cols[j] {
			d -= e.y[en.row] * en.v
		}
		if d <= ffEps {
			continue
		}
		if bland {
			return j
		}
		if d > best {
			enter, best = j, d
		}
	}
	return enter
}

// ratioTest mirrors engine.ratioTest: degenerate rows (basic value
// ~0) short-circuit with priority, tie-broken by smallest basic
// column index; otherwise the minimum ratio wins, ties again by
// smallest basic column index, with an ffEps band standing in for the
// exact equality comparisons.
func (e *fengine) ratioTest(w []float64) int {
	leave := -1
	bestZero := false
	best := 0.0
	for i := range w {
		if w[i] <= ffEps {
			continue
		}
		if math.Abs(e.xB[i]) <= ffEps {
			if !bestZero || leave < 0 || e.basis[i] < e.basis[leave] {
				leave, bestZero = i, true
			}
			continue
		}
		if bestZero {
			continue
		}
		ratio := e.xB[i] / w[i]
		if leave < 0 || ratio < best-ffEps ||
			(ratio <= best+ffEps && e.basis[i] < e.basis[leave]) {
			if leave < 0 || ratio < best {
				best = ratio
			}
			leave = i
		}
	}
	return leave
}

// pivot mirrors engine.pivot, including the degenerate-pivot
// short-circuit and the Bland-fallback bookkeeping.
func (e *fengine) pivot(r, enter int, w []float64) error {
	if math.Abs(w[r]) < ffPivTol {
		return errFloatSingular
	}
	theta := e.xB[r] / w[r]
	degenerate := math.Abs(theta) <= ffEps
	if !degenerate {
		for i := range e.xB {
			if i == r || w[i] == 0 {
				continue
			}
			e.xB[i] -= theta * w[i]
		}
		e.xB[r] = theta
	} else {
		e.xB[r] = 0
	}
	e.pushEta(r, w)
	e.inB[e.basis[r]] = false
	e.basis[r] = enter
	e.inB[enter] = true
	e.pivots++
	if degenerate {
		e.degen++
		if !e.par.noFallback && e.degen >= e.par.blandAfter {
			e.blandOn = true
		}
	} else {
		e.degen = 0
		e.blandOn = false
	}
	if len(e.etas)-e.baseEtas >= ffReinvert {
		if err := e.reinvert(); err != nil {
			return err
		}
		e.recomputeXB()
	}
	return nil
}

// banArtificials mirrors engine.banArtificials: ban every artificial,
// pivot still-basic ones onto the first real column with a usable
// entry in their row, and drop rows with none (redundant rows) so the
// phase-2 walk sees the same system the exact engine would.
func (e *fengine) banArtificials() error {
	for j := range e.cols {
		if e.s.cols[j].kind == colArtificial {
			e.bannd[j] = true
		}
	}
	for i := 0; i < len(e.basis); i++ {
		if e.s.cols[e.basis[i]].kind != colArtificial {
			continue
		}
		rho := e.unitBtran(i)
		pivoted := false
		for j := range e.cols {
			if e.bannd[j] || e.inB[j] {
				continue
			}
			alpha := 0.0
			for _, en := range e.cols[j] {
				alpha += rho[en.row] * en.v
			}
			if math.Abs(alpha) <= ffPivTol {
				continue
			}
			w := e.colFtran(j)
			if math.Abs(w[i]) < ffPivTol {
				continue
			}
			if err := e.pivot(i, j, w); err != nil {
				return err
			}
			pivoted = true
			break
		}
		if !pivoted {
			if err := e.dropRow(i); err != nil {
				return err
			}
			i--
		}
	}
	return nil
}

// dropRow removes row position i from the engine's private system and
// refactors, mirroring engine.dropRow (which does the same to the
// shared stdForm in the exact cold solve).
func (e *fengine) dropRow(i int) error {
	e.inB[e.basis[i]] = false
	e.basis = append(e.basis[:i], e.basis[i+1:]...)
	e.xB = append(e.xB[:i], e.xB[i+1:]...)
	e.b = append(e.b[:i], e.b[i+1:]...)
	for j := range e.cols {
		nz := e.cols[j][:0]
		for _, en := range e.cols[j] {
			switch {
			case en.row == i:
				// dropped
			case en.row > i:
				nz = append(nz, fentry{row: en.row - 1, v: en.v})
			default:
				nz = append(nz, en)
			}
		}
		e.cols[j] = nz
	}
	e.y = e.y[:len(e.b)]
	e.w = e.w[:len(e.b)]
	e.etas = e.etas[:0]
	if err := e.reinvert(); err != nil {
		return err
	}
	e.recomputeXB()
	return nil
}

// --- float basis factorization --------------------------------------

func (e *fengine) pushEta(r int, w []float64) {
	diag := 1 / w[r]
	var nz []fentry
	for i := range w {
		if i == r || w[i] == 0 {
			continue
		}
		nz = append(nz, fentry{row: i, v: -w[i] * diag})
	}
	e.etas = append(e.etas, feta{r: r, diag: diag, nz: nz})
}

func (e *fengine) ftran(x []float64) {
	for k := range e.etas {
		E := &e.etas[k]
		xr := x[E.r]
		if xr == 0 {
			continue
		}
		for _, en := range E.nz {
			x[en.row] += en.v * xr
		}
		x[E.r] = xr * E.diag
	}
}

func (e *fengine) btran(y []float64) {
	for k := len(e.etas) - 1; k >= 0; k-- {
		E := &e.etas[k]
		v := y[E.r] * E.diag
		for _, en := range E.nz {
			if y[en.row] != 0 {
				v += y[en.row] * en.v
			}
		}
		y[E.r] = v
	}
}

func (e *fengine) colFtran(j int) []float64 {
	w := e.w
	for i := range w {
		w[i] = 0
	}
	for _, en := range e.cols[j] {
		w[en.row] = en.v
	}
	e.ftran(w)
	return w
}

func (e *fengine) unitBtran(r int) []float64 {
	rho := make([]float64, len(e.b))
	rho[r] = 1
	e.btran(rho)
	return rho
}

// reinvert refactors the basis from scratch, sparsest columns first,
// assigning each column to its largest-magnitude unassigned row
// (partial pivoting — unlike the exact engine, float factorization
// must care about pivot size; the row assignment permutes xB, which
// no pivot decision depends on, since tie-breaks use basic column
// indices, not row positions).
func (e *fengine) reinvert() error {
	mRows := len(e.b)
	order := append([]int(nil), e.basis...)
	sort.Slice(order, func(a, b int) bool {
		na, nb := len(e.cols[order[a]]), len(e.cols[order[b]])
		if na != nb {
			return na < nb
		}
		return order[a] < order[b]
	})
	e.etas = e.etas[:0]
	assigned := make([]bool, mRows)
	newBasis := make([]int, mRows)
	for _, j := range order {
		w := e.colFtran(j)
		r, best := -1, ffPivTol
		for i := 0; i < mRows; i++ {
			if !assigned[i] {
				if a := math.Abs(w[i]); a > best {
					r, best = i, a
				}
			}
		}
		if r < 0 {
			return errFloatSingular
		}
		e.pushEta(r, w)
		assigned[r] = true
		newBasis[r] = j
	}
	e.basis = newBasis
	e.baseEtas = len(e.etas)
	return nil
}

func (e *fengine) recomputeXB() {
	e.xB = append(e.xB[:0], e.b...)
	e.ftran(e.xB)
}

// --- exact certification ---------------------------------------------

// solveFloatFirst is the Options.FloatFirst solve path: float search,
// exact certificate, pure-exact fallback.
func (m *Model) solveFloatFirst(opts *Options) (*Solution, error) {
	reg := obsOf(opts)
	s := m.standardize()
	par := m.resolveParams(opts, len(s.rows), len(s.cols))
	fsp := reg.StartSpan("lp_float_search")
	fbasis, fstatus, fpivots, ferr := solveFloatSparse(s, par)
	fsp.End()
	if ferr == nil && fstatus == Optimal {
		csp := reg.StartSpan("lp_certify")
		sol, err := m.certifyFloatBasis(s, encodeBasis(s, fbasis), opts, fpivots)
		csp.End()
		if err == nil {
			return sol, nil
		}
		if !errors.Is(err, errWarmReject) {
			return nil, err
		}
		// Certification rejected the float basis: fall through to the
		// authoritative exact solve. The float engine may have dropped
		// redundant rows from its private copies, but the shared
		// stdForm is untouched; solveCold re-standardizes anyway.
	}
	// A float status other than Optimal (or a numerical failure) is
	// never trusted: Infeasible/Unbounded must be re-derived exactly.
	sol, err := m.solveCold(opts)
	if err != nil {
		return nil, err
	}
	sol.Info.FloatPivots = fpivots
	sol.Info.CertifiedCold = true
	return sol, nil
}

// certifyFloatBasis reinstalls the float-final basis over exact
// rationals and proves (or repairs) optimality: exact primal
// feasibility from recomputed basic values, exact dual feasibility
// from exact reduced costs, primal or dual simplex pivots — at most
// the repair budget — where the float result and the exact numbers
// disagree. errWarmReject means the basis cannot be certified within
// budget and the caller must solve cold.
func (m *Model) certifyFloatBasis(s *stdForm, b *Basis, opts *Options, floatPivots int) (*Solution, error) {
	colIdx, ok := mapBasis(s, b)
	if !ok {
		return nil, errWarmReject
	}
	par := m.resolveParams(opts, len(s.rows), len(s.cols))
	par.budget = resolveRepairBudget(opts, len(s.rows))
	e := newEngine(s, par)
	// Artificials exist only as padding for rows the float basis does
	// not cover (redundant rows, leftover degenerate artificials);
	// they are banned from entering throughout.
	for j := range s.cols {
		if s.cols[j].kind == colArtificial {
			e.banned[j] = true
		}
	}
	if err := e.installBasis(colIdx); err != nil {
		return nil, errWarmReject
	}
	e.recomputeXB()
	e.setPhase2Costs()

	unboundedSol := func() *Solution {
		info := e.info
		info.RepairPivots = info.Pivots
		info.FloatPivots = floatPivots
		return &Solution{Status: Unbounded, Info: info, model: m}
	}
	finish := func() (*Solution, error) {
		// A padding artificial settled at a nonzero value means the
		// certified basis solves a restriction, not the real LP.
		for i, bj := range e.basis {
			if s.cols[bj].kind == colArtificial && !e.xB[i].IsZero() {
				return nil, errWarmReject
			}
		}
		sol, err := e.extract()
		if err != nil {
			return nil, err
		}
		sol.Info.RepairPivots = sol.Info.Pivots
		sol.Info.FloatPivots = floatPivots
		return sol, nil
	}

	if e.primalFeasible() {
		// Exact primal feasibility holds; any optimality disagreement
		// is repaired by exact primal pivots (0 when the float basis
		// is exactly optimal — the common case, since the float walk
		// mirrors the exact one).
		if err := e.primal(); err != nil {
			if errors.Is(err, errUnbounded) {
				// Authoritative: the basis is exactly feasible and the
				// improving ray is exactly unbounded.
				return unboundedSol(), nil
			}
			return nil, errWarmReject
		}
		return finish()
	}
	if !e.dualFeasible() {
		// Neither exactly primal nor exactly dual feasible: the float
		// basis is too far off to repair cheaply.
		return nil, errWarmReject
	}
	if err := e.dual(); err != nil {
		return nil, errWarmReject
	}
	if err := e.primal(); err != nil { // usually 0 iterations
		if errors.Is(err, errUnbounded) {
			return unboundedSol(), nil
		}
		return nil, errWarmReject
	}
	return finish()
}
