package lp

import "repro/pkg/steady/obs"

// Metric names exported by the LP layer. All counters are cumulative
// across solves; the per-phase wall times land in the shared
// steady_stage_duration_seconds histogram via spans (stages lp_solve,
// lp_phase1, lp_phase2, lp_warm, lp_float_search, lp_certify).
const (
	metricPivots    = "steady_lp_pivots_total"
	metricPhase1    = "steady_lp_phase1_pivots_total"
	metricBland     = "steady_lp_bland_pivots_total"
	metricFloatPiv  = "steady_lp_float_pivots_total"
	metricRepairPiv = "steady_lp_repair_pivots_total"
	metricRefactor  = "steady_lp_refactorizations_total"
	metricSolves    = "steady_lp_solves_total"
	metricFallbacks = "steady_lp_fallbacks_total"
	metricErrors    = "steady_lp_errors_total"
)

// obsOf extracts the registry from possibly-nil options.
func obsOf(o *Options) *obs.Registry {
	if o == nil {
		return nil
	}
	return o.Obs
}

// flushSolveMetrics records one finished solve into the registry. It
// runs once per SolveOpts call (not per pivot), so the handful of
// registry lookups is off the hot path.
func flushSolveMetrics(opts *Options, sol *Solution, err error) {
	r := opts.Obs
	if err != nil {
		r.Counter(metricErrors, "LP solves that returned an error.").Inc()
		return
	}
	info := sol.Info
	r.Counter(metricPivots, "Exact simplex pivots across all phases.").Add(int64(info.Pivots))
	r.Counter(metricPhase1, "Exact pivots spent in phase 1.").Add(int64(info.Phase1Pivots))
	r.Counter(metricBland, "Exact pivots taken under the Bland anti-cycling fallback.").Add(int64(info.BlandPivots))
	r.Counter(metricFloatPiv, "float64 pivots of the float-first search phase.").Add(int64(info.FloatPivots))
	r.Counter(metricRepairPiv, "Exact pivots spent repairing a float-optimal basis.").Add(int64(info.RepairPivots))
	r.Counter(metricRefactor, "Exact basis refactorizations (eta file rebuilds).").Add(int64(info.Refactorizations))

	path := "cold"
	switch {
	case info.WarmStarted:
		path = "warm"
	case info.FloatPivots > 0 && !info.CertifiedCold:
		path = "float"
	}
	r.CounterVec(metricSolves, "LP solves by search path.", "path").With(path).Inc()

	if opts.WarmBasis != nil && !info.WarmStarted {
		r.CounterVec(metricFallbacks, "LP fallbacks by kind.", "kind").With("warm_reject").Inc()
	}
	if info.CertifiedCold {
		r.CounterVec(metricFallbacks, "LP fallbacks by kind.", "kind").With("exact").Inc()
	}
}
