package lp

// basisEntry identifies one basic column in model terms — stable
// across re-standardization of a structurally identical model, which
// is what lets a basis warm-start a neighboring solve.
type basisEntry struct {
	kind  colKind // colStruct, colSlack or colSurplus (never colArtificial)
	neg   bool    // colStruct: the negative part of a free variable
	bound bool    // colSlack: slack of an upper-bound row rather than a constraint
	idx   int     // colStruct / bound slack: var index; otherwise constraint index
}

// Basis is the optimal basis of a solved Model, in a representation
// keyed by the model's own structure (variable and constraint
// indices) rather than by internal column positions. Obtain one from
// Solution.Basis and feed it to Model.SolveFrom (or
// Options.WarmBasis) on a model with the same shape — same variable
// count, constraint count, operators and bound pattern — to re-solve
// in a handful of pivots instead of from scratch.
//
// A Basis is immutable and safe for concurrent use; pkg/steady/batch
// caches one per solver and pkg/steady/sim's adaptive controller
// carries one across epochs.
type Basis struct {
	nVars, nCons int
	entries      []basisEntry
}

// Len returns the number of basic columns recorded (at most the
// model's row count; fewer when redundant rows were removed or the
// optimum kept a degenerate artificial basic).
func (b *Basis) Len() int {
	if b == nil {
		return 0
	}
	return len(b.entries)
}

// encodeBasis renders the engine's final basis in model terms.
// Artificial columns (possible only as degenerate leftovers of a
// warm-started solve) are skipped: a later warm start re-pads
// uncovered rows itself.
func encodeBasis(s *stdForm, basis []int) *Basis {
	out := &Basis{nVars: s.m.NumVars(), nCons: s.m.NumCons()}
	for _, j := range basis {
		col := &s.cols[j]
		switch col.kind {
		case colStruct:
			out.entries = append(out.entries, basisEntry{kind: colStruct, neg: col.neg, idx: int(col.vr)})
		case colSlack, colSurplus:
			r := s.rowByOrigin(col.row)
			if r == nil {
				continue
			}
			if r.conIdx >= 0 {
				out.entries = append(out.entries, basisEntry{kind: col.kind, idx: r.conIdx})
			} else {
				out.entries = append(out.entries, basisEntry{kind: col.kind, bound: true, idx: int(r.boundVar)})
			}
		}
	}
	return out
}

// mapBasis resolves a Basis against a freshly standardized form,
// returning the column indices it names. ok is false when the basis
// does not fit the model (shape mismatch, unknown entry, duplicate),
// in which case the caller solves cold.
func mapBasis(s *stdForm, b *Basis) (colIdx []int, ok bool) {
	if b == nil || b.nVars != s.m.NumVars() || b.nCons != s.m.NumCons() {
		return nil, false
	}
	if len(b.entries) > len(s.rows) {
		return nil, false
	}
	lookup := make(map[basisEntry]int, len(s.cols))
	for j := range s.cols {
		col := &s.cols[j]
		switch col.kind {
		case colStruct:
			lookup[basisEntry{kind: colStruct, neg: col.neg, idx: int(col.vr)}] = j
		case colSlack, colSurplus:
			r := &s.rows[col.row] // no removals have happened yet
			if r.conIdx >= 0 {
				lookup[basisEntry{kind: col.kind, idx: r.conIdx}] = j
			} else {
				lookup[basisEntry{kind: col.kind, bound: true, idx: int(r.boundVar)}] = j
			}
		}
	}
	seen := make(map[int]bool, len(b.entries))
	for _, e := range b.entries {
		j, found := lookup[e]
		if !found || seen[j] {
			return nil, false
		}
		seen[j] = true
		colIdx = append(colIdx, j)
	}
	return colIdx, true
}
